package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/transport"
)

// PeerPlayer is the player id peer connections present in their hello.
// Peers never join FI sync, so the id only labels the session in logs
// and stats; the top of the range keeps it clear of real players.
const PeerPlayer uint8 = 0xFF

// RemoteError is an application-level rejection from the owner (e.g. an
// admission-control shed) delivered as MsgError on a healthy peer
// connection. The connection is reusable and the peer stays up; the
// caller falls back to rendering locally.
type RemoteError struct {
	Addr string
	Msg  string
}

func (e *RemoteError) Error() string { return "cluster: peer " + e.Addr + ": " + e.Msg }

// peerConn is one pooled connection to a peer, with its monotonic
// request-id counter (ids are per connection, like client sessions).
type peerConn struct {
	nc    net.Conn
	c     *transport.Conn
	reqID uint32
}

// peer is the fetch client for one remote node: a bounded idle
// connection pool plus the up/down belief the health loop and passive
// fetch failures maintain.
type peer struct {
	addr    string
	game    string
	dialTO  time.Duration
	fetchTO time.Duration
	pool    int
	cluster *Cluster

	mu   sync.Mutex
	idle []*peerConn

	up atomic.Bool
	// upGauge mirrors the up belief into /metrics (1 up, 0 down);
	// nil-safe when the cluster is uninstrumented.
	upGauge *obs.Gauge
}

func newPeer(addr string, cfg Config, c *Cluster) *peer {
	p := &peer{
		addr:    addr,
		game:    cfg.Game,
		dialTO:  cfg.DialTimeout,
		fetchTO: cfg.FetchTimeout,
		pool:    cfg.PoolSize,
		cluster: c,
	}
	// Optimistic start: the first fetch or probe corrects the belief.
	// Starting down would force every node to wait out a health interval
	// before any peer traffic flows.
	p.up.Store(true)
	return p
}

func (p *peer) isUp() bool { return p.up.Load() }

// markDown flips the peer down and drops pooled connections (they share
// the failed endpoint; reusing them would just fail again slower). Only
// a successful probe brings the peer back.
func (p *peer) markDown() {
	if p.up.CompareAndSwap(true, false) {
		p.cluster.obs.downMarks.Inc()
		p.cluster.obs.peersUp.Set(int64(p.cluster.PeersUp()))
		p.upGauge.Set(0)
	}
	p.drain()
}

func (p *peer) markUp() {
	if p.up.CompareAndSwap(false, true) {
		p.cluster.obs.recoveries.Inc()
		p.cluster.obs.peersUp.Set(int64(p.cluster.PeersUp()))
		p.upGauge.Set(1)
	}
}

// get returns a pooled connection, dialling and performing the hello
// exchange when the pool is empty.
func (p *peer) get() (*peerConn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	return p.dial()
}

// put returns a healthy connection to the pool, closing it when the
// pool is full.
func (p *peer) put(pc *peerConn) {
	p.mu.Lock()
	if len(p.idle) < p.pool {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.nc.Close()
}

// drain closes all pooled connections.
func (p *peer) drain() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, pc := range idle {
		pc.nc.Close()
	}
}

// dial opens and handshakes a new peer connection. The dial and the
// hello round trip are both bounded so an unreachable or wedged peer
// fails in bounded time.
func (p *peer) dial() (*peerConn, error) {
	nc, err := transport.Dial(p.addr, p.dialTO)
	if err != nil {
		return nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(p.dialTO)); err != nil {
		nc.Close()
		return nil, err
	}
	c := transport.NewConn(nc)
	hello := transport.EncodeHello(transport.Hello{Player: PeerPlayer, Game: p.game})
	if err := c.Send(transport.Message{Type: transport.MsgHello, Payload: hello}); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if m.Type == transport.MsgError {
		nc.Close()
		return nil, &RemoteError{Addr: p.addr, Msg: string(m.Payload)}
	}
	if m.Type != transport.MsgHello {
		nc.Close()
		return nil, fmt.Errorf("cluster: peer %s: unexpected hello reply %d", p.addr, m.Type)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, err
	}
	return &peerConn{nc: nc, c: c}, nil
}

// fetch runs one MsgPeerFrameRequest round trip. Transport failures
// close the connection and mark the peer down (passively — the health
// loop will bring it back); application-level rejections (RemoteError)
// keep both the connection and the peer's up state.
//
// traceID, when non-zero, is the distributed trace id of the client
// request being proxied; the hop forwards its request context (player
// and request id) verbatim so the owner derives the identical id. The
// protocol is synchronous per connection, so reusing the client's id in
// place of the per-connection counter is unambiguous. Untraced fetches
// (traceID 0) keep the per-connection counter under PeerPlayer.
func (p *peer) fetch(pt geom.GridPoint, deadlineMs float64, traceID uint64) (transport.FrameReply, error) {
	pc, err := p.get()
	if err != nil {
		p.markDown()
		return transport.FrameReply{}, err
	}
	if err := pc.nc.SetDeadline(time.Now().Add(p.fetchTO)); err != nil {
		pc.nc.Close()
		p.markDown()
		return transport.FrameReply{}, err
	}
	player, reqID := PeerPlayer, uint32(traceID)
	if traceID != 0 {
		player = uint8(traceID >> 32)
	} else {
		pc.reqID++
		reqID = pc.reqID
	}
	req := transport.EncodeFrameRequest(transport.FrameRequest{
		Player:     player,
		Point:      pt,
		ReqID:      reqID,
		SentMs:     float64(time.Now().UnixNano()) / 1e6,
		DeadlineMs: deadlineMs,
	})
	if err := pc.c.Send(transport.Message{Type: transport.MsgPeerFrameRequest, Payload: req}); err != nil {
		pc.nc.Close()
		p.markDown()
		return transport.FrameReply{}, err
	}
	m, err := pc.c.Recv()
	if err != nil {
		pc.nc.Close()
		p.markDown()
		return transport.FrameReply{}, err
	}
	if m.Type == transport.MsgError {
		if derr := pc.nc.SetDeadline(time.Time{}); derr == nil {
			p.put(pc)
		} else {
			pc.nc.Close()
		}
		return transport.FrameReply{}, &RemoteError{Addr: p.addr, Msg: string(m.Payload)}
	}
	if m.Type != transport.MsgPeerFrameReply {
		pc.nc.Close()
		p.markDown()
		return transport.FrameReply{}, fmt.Errorf("cluster: peer %s: unexpected reply %d", p.addr, m.Type)
	}
	reply, err := transport.DecodeFrameReply(m.Payload)
	if err != nil {
		pc.nc.Close()
		p.markDown()
		return transport.FrameReply{}, err
	}
	if err := pc.nc.SetDeadline(time.Time{}); err != nil {
		pc.nc.Close()
		return reply, nil // reply is good; only the pooled reuse is lost
	}
	p.put(pc)
	return reply, nil
}
