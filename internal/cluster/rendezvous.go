// Package cluster shards grid-point ownership across N coterie-server
// processes. Ownership is decided by rendezvous (highest-random-weight)
// hashing: every node scores every grid point independently and the
// highest score owns the point, so all nodes agree on ownership with no
// coordination, distribution is balanced by the hash, and when a node
// leaves only the points it owned move (each orphaned point falls to its
// second-highest scorer; points owned by surviving nodes keep their
// owner — the property consistent hashing is chosen for).
//
// The rest of the package is the runtime around that decision: a static
// membership list with periodic health checks (membership.go) and a
// pooled, singleflighted peer-fetch client that proxies frame requests
// to a point's owner over the transport's MsgPeerFrameRequest hop
// (peer.go).
package cluster

import "coterie/internal/geom"

// fnv64Offset/fnv64Prime are the FNV-1a constants; the node hash must be
// identical in every process, so the hash is spelled out here rather
// than delegated to anything seed- or process-dependent.
const (
	fnv64Offset = 0xcbf29ce484222325
	fnv64Prime  = 0x100000001b3
)

// nodeHash hashes a node address with FNV-1a.
func nodeHash(node string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnv64Prime
	}
	return h
}

// Score is the rendezvous weight of a node for a grid point: the node's
// address hash mixed with the point coordinates through a splitmix64
// finaliser. Deterministic across processes and Go versions — it uses
// nothing but the bytes of the address and the point indices.
func Score(node string, pt geom.GridPoint) uint64 {
	h := nodeHash(node)
	h ^= uint64(uint32(pt.I)) | uint64(uint32(pt.J))<<32
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// Owner returns the rendezvous owner of pt among nodes: the node with
// the highest Score, ties broken toward the lexicographically smaller
// address so the choice is total. Returns "" for an empty node list.
func Owner(nodes []string, pt geom.GridPoint) string {
	best := ""
	var bestScore uint64
	for _, n := range nodes {
		s := Score(n, pt)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}
