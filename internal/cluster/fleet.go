package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"coterie/internal/obs"
)

// This file is the fleet-aggregation side of cluster observability: each
// node can scrape its peers' admin endpoints (/metrics, /qoe, /slo) and
// serve the merged view at /cluster, so any node answers "is the fleet
// meeting its SLO right now?" without an external collector. Scrapes are
// bounded by a per-node timeout and a failed node is stale-marked in the
// output rather than hanging or hiding the rest of the fleet.

// DefaultScrapeTimeout bounds one node's scrape (all three endpoints
// together). A node slower than this is reported stale; the fleet view
// must come back fast enough to be a live dashboard.
const DefaultScrapeTimeout = 2 * time.Second

// FleetConfig names the admin endpoints of the whole fleet.
type FleetConfig struct {
	// Self is this node's own admin address as it appears in Admins
	// (marks the serving node in the output; empty is fine).
	Self string
	// Admins is every node's admin address, including Self's.
	Admins []string
	// Timeout bounds one node's scrape (0: DefaultScrapeTimeout).
	Timeout time.Duration
}

// FleetNode is one node's slice of the fleet view. Stale nodes carry
// only Addr, Stale and Err: their numbers would be from before the
// failure and merging them would silently misstate fleet totals.
type FleetNode struct {
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	Stale bool   `json:"stale"`
	Err   string `json:"err,omitempty"`

	// From /metrics: serving volume, store residency, and the cluster
	// serving mix (how much work crossed node boundaries).
	FramesServed     int64 `json:"frames_served"`
	FramesRendered   int64 `json:"frames_rendered"`
	StoreBytes       int64 `json:"store_bytes"`
	SessionsActive   int64 `json:"sessions_active"`
	PeerFrames       int64 `json:"peer_frames"`
	PeerFailovers    int64 `json:"peer_failovers"`
	PeerFramesServed int64 `json:"peer_frames_served"`
	PeersUp          int64 `json:"peers_up"`
	DeadlineMet      int64 `json:"deadline_met"`
	DeadlineMisses   int64 `json:"deadline_misses"`

	// DeadlineCompliance is deadline_met over all deadline-tracked
	// serves; -1 when the node saw no deadline traffic.
	DeadlineCompliance float64 `json:"deadline_compliance"`

	// From /slo: the node's error-budget burn.
	SLO obs.SLOSnapshot `json:"slo"`

	// From /qoe: the node's windowed QoE over its recorded spans (server
	// nodes record hop spans only, so this is mostly interesting on
	// client admin endpoints; kept raw for obsreport).
	QoE *obs.QoESnapshot `json:"qoe,omitempty"`
}

// FleetView is the merged fleet state served at /cluster.
type FleetView struct {
	Self  string      `json:"self,omitempty"`
	Nodes []FleetNode `json:"nodes"`

	// Totals over the live (non-stale) nodes.
	NodesUp        int   `json:"nodes_up"`
	NodesStale     int   `json:"nodes_stale"`
	FramesServed   int64 `json:"frames_served"`
	StoreBytes     int64 `json:"store_bytes"`
	PeerFrames     int64 `json:"peer_frames"`
	PeerFailovers  int64 `json:"peer_failovers"`
	DeadlineMet    int64 `json:"deadline_met"`
	DeadlineMisses int64 `json:"deadline_misses"`

	// DeadlineCompliance and BurnRate1m/5m summarise the fleet: the
	// compliance ratio over all live nodes' deadline-tracked serves, and
	// the frame-weighted mean burn rates. Compliance is -1 with no
	// deadline traffic.
	DeadlineCompliance float64 `json:"deadline_compliance"`
	BurnRate1m         float64 `json:"burn_rate_1m"`
	BurnRate5m         float64 `json:"burn_rate_5m"`
}

// Scrape collects the fleet view: every admin endpoint is scraped
// concurrently under the per-node timeout, failures are stale-marked,
// and the totals merge only live nodes. Node order follows cfg.Admins.
func Scrape(cfg FleetConfig) FleetView {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultScrapeTimeout
	}
	view := FleetView{Self: cfg.Self, Nodes: make([]FleetNode, len(cfg.Admins))}
	var wg sync.WaitGroup
	for i, addr := range cfg.Admins {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			view.Nodes[i] = scrapeNode(addr, addr == cfg.Self, timeout)
		}(i, addr)
	}
	wg.Wait()

	var sloFrames1m, sloBad1m, sloFrames5m, sloBad5m int64
	var budget1m, budget5m float64
	for _, n := range view.Nodes {
		if n.Stale {
			view.NodesStale++
			continue
		}
		view.NodesUp++
		view.FramesServed += n.FramesServed
		view.StoreBytes += n.StoreBytes
		view.PeerFrames += n.PeerFrames
		view.PeerFailovers += n.PeerFailovers
		view.DeadlineMet += n.DeadlineMet
		view.DeadlineMisses += n.DeadlineMisses
		sloFrames1m += n.SLO.Short.Frames
		sloBad1m += n.SLO.Short.BadFrames
		sloFrames5m += n.SLO.Long.Frames
		sloBad5m += n.SLO.Long.BadFrames
		if n.SLO.Objective > 0 && n.SLO.Objective < 1 {
			budget1m = 1 - n.SLO.Objective
			budget5m = budget1m
		}
	}
	if total := view.DeadlineMet + view.DeadlineMisses; total > 0 {
		view.DeadlineCompliance = float64(view.DeadlineMet) / float64(total)
	} else {
		view.DeadlineCompliance = -1
	}
	if sloFrames1m > 0 && budget1m > 0 {
		view.BurnRate1m = (float64(sloBad1m) / float64(sloFrames1m)) / budget1m
	}
	if sloFrames5m > 0 && budget5m > 0 {
		view.BurnRate5m = (float64(sloBad5m) / float64(sloFrames5m)) / budget5m
	}
	return view
}

// scrapeNode fetches one node's /metrics, /slo and /qoe. The first
// failure stale-marks the node; /qoe and /slo tolerate absence on older
// nodes only insofar as a missing endpoint still answers 200 from the
// admin mux — a transport failure is a real failure.
func scrapeNode(addr string, self bool, timeout time.Duration) FleetNode {
	n := FleetNode{Addr: addr, Self: self, DeadlineCompliance: -1}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	var snap obs.Snapshot
	if err := getJSON(ctx, addr, "/metrics", &snap); err != nil {
		n.Stale, n.Err = true, err.Error()
		return n
	}
	n.FramesServed = snap.Counters["server.frames_served"]
	n.FramesRendered = snap.Counters["server.frames_rendered"]
	n.PeerFrames = snap.Counters["server.peer_frames"]
	n.PeerFailovers = snap.Counters["server.peer_failovers"]
	n.PeerFramesServed = snap.Counters["server.peer_frames_served"]
	n.DeadlineMet = snap.Counters["server.deadline_met"]
	n.DeadlineMisses = snap.Counters["server.deadline_misses"]
	n.StoreBytes = snap.Gauges["server.store_bytes"]
	n.SessionsActive = snap.Gauges["server.sessions_active"]
	n.PeersUp = snap.Gauges["cluster.peers_up"]
	if total := n.DeadlineMet + n.DeadlineMisses; total > 0 {
		n.DeadlineCompliance = float64(n.DeadlineMet) / float64(total)
	}

	if err := getJSON(ctx, addr, "/slo", &n.SLO); err != nil {
		n.Stale, n.Err = true, err.Error()
		return n
	}
	var qoe obs.QoESnapshot
	if err := getJSON(ctx, addr, "/qoe", &qoe); err != nil {
		n.Stale, n.Err = true, err.Error()
		return n
	}
	if qoe.Spans > 0 {
		n.QoE = &qoe
	}
	return n
}

// getJSON fetches one admin endpoint into out under the scrape context.
func getJSON(ctx context.Context, addr, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: scrape %s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// FleetHandler serves the merged fleet view as JSON; register it on the
// admin mux at /cluster. Every request re-scrapes, so the view is live;
// the per-node timeout bounds the whole request.
func FleetHandler(cfg FleetConfig) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Scrape(cfg))
	}
}
