// Obsreport renders a frame-attribution report from /trace JSON: a
// per-frame stage waterfall (span schema v2 — network, cluster hop,
// server queue, render, encode, decode, slack) plus a QoE summary table
// (window FPS, missed-vsync ratio, frame-budget compliance, cache-hit
// rate) per player.
//
// The input is the JSON array served by the client's /trace admin
// endpoint, read from files, stdin ("-"), or fetched live from http(s)
// URLs. Several inputs merge — hand it every node's /trace to follow
// cluster traffic:
//
//	obsreport trace.json
//	curl -s localhost:7369/trace?n=512 | obsreport -
//	obsreport -n 30 http://localhost:7369/trace?n=512
//
// With -trace, the report is the multi-hop waterfall of one distributed
// trace id instead: the client display span, the proxying node's hop
// span, and the owner's serve span, one row per hop. Feed it the client
// trace plus both nodes' /trace?trace=<id>:
//
//	obsreport -trace 4295032833 http://client:7369/trace http://node0:6060/trace http://node1:6061/trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"

	"coterie/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("obsreport: %v", err)
	}
}

func run() error {
	n := flag.Int("n", 40, "waterfall rows (most recent frames; 0 = none)")
	player := flag.Int("player", -1, "restrict to one player (-1 = all)")
	window := flag.Float64("window", 0, "QoE window in ms (0 = default)")
	budget := flag.Float64("budget", 0, "frame budget in ms (0 = 16.7)")
	barWidth := flag.Int("bar", 48, "waterfall bar width in characters")
	traceID := flag.Uint64("trace", 0, "render the multi-hop waterfall of one distributed trace id instead of the frame report (0 = off)")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: obsreport [flags] <trace.json | - | http://host/trace> ...")
	}

	var spans []obs.FrameSpan
	for _, src := range flag.Args() {
		s, err := loadSpans(src)
		if err != nil {
			return err
		}
		spans = append(spans, s...)
	}
	if *traceID != 0 {
		return printTrace(spans, *traceID, *barWidth)
	}
	// The frame report covers client display spans only; server-side hop
	// spans (Hop != 0) belong to the -trace view.
	kept := spans[:0]
	for _, sp := range spans {
		if sp.Hop == 0 && (*player < 0 || sp.Player == *player) {
			kept = append(kept, sp)
		}
	}
	spans = kept
	if len(spans) == 0 {
		return fmt.Errorf("no spans in input")
	}

	if *n > 0 {
		rows := spans
		if len(rows) > *n {
			rows = rows[len(rows)-*n:]
		}
		printWaterfall(rows, *barWidth)
		fmt.Println()
	}
	printQoE(obs.ComputeQoE(spans, obs.QoEConfig{
		WindowMs: *window,
		BudgetMs: *budget,
		Player:   -1, // per-flag filtering already happened above
	}))
	return nil
}

// loadSpans reads a /trace JSON array from a URL, stdin ("-") or a file.
func loadSpans(src string) ([]obs.FrameSpan, error) {
	var r io.ReadCloser
	switch {
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		r = resp.Body
	case src == "-":
		r = os.Stdin
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	var spans []obs.FrameSpan
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, fmt.Errorf("parsing trace JSON: %w", err)
	}
	return spans, nil
}

// waterfall segment glyphs, in pipeline order. The fetch decomposition is
// rendered sequentially (net, cluster hop, queue, render, encode), then
// decode, then whatever pipeline time the stages do not account for
// (local render, merge), then display slack.
const (
	glyphNet    = 'n'
	glyphHop    = 'h'
	glyphQueue  = 'q'
	glyphRender = 'r'
	glyphEncode = 'e'
	glyphDecode = 'd'
	glyphOther  = '~'
	glyphSlack  = '.'
)

func printWaterfall(spans []obs.FrameSpan, width int) {
	if width < 8 {
		width = 8
	}
	maxMs := 0.0
	for _, sp := range spans {
		if d := sp.DisplayMs - sp.StartMs; d > maxMs {
			maxMs = d
		}
	}
	if maxMs <= 0 {
		maxMs = 1
	}
	fmt.Printf("stage waterfall (last %d frames, %.1f ms full scale)\n", len(spans), maxMs)
	fmt.Printf("segments: %c net  %c hop  %c queue  %c render  %c encode  %c decode  %c other  %c slack\n",
		glyphNet, glyphHop, glyphQueue, glyphRender, glyphEncode, glyphDecode, glyphOther, glyphSlack)
	fmt.Printf("%3s %6s %9s %7s %6s %6s %6s %6s %6s %6s %4s  bar\n",
		"ply", "frame", "start", "total", "net", "hop", "queue", "rendr", "encod", "decod", "hit")
	for _, sp := range spans {
		total := sp.DisplayMs - sp.StartMs
		pipeline := total - sp.SlackMs
		other := pipeline - sp.NetMs - sp.HopMs - sp.QueueMs - sp.RenderMs - sp.EncodeMs - sp.DecodeMs
		if other < 0 {
			other = 0
		}
		var bar strings.Builder
		scale := float64(width) / maxMs
		seg := func(ms float64, glyph rune) {
			for i := 0; i < int(ms*scale+0.5); i++ {
				bar.WriteRune(glyph)
			}
		}
		seg(sp.NetMs, glyphNet)
		seg(sp.HopMs, glyphHop)
		seg(sp.QueueMs, glyphQueue)
		seg(sp.RenderMs, glyphRender)
		seg(sp.EncodeMs, glyphEncode)
		seg(sp.DecodeMs, glyphDecode)
		seg(other, glyphOther)
		seg(sp.SlackMs, glyphSlack)
		hit := ""
		if sp.CacheHit {
			hit = "*"
		}
		fmt.Printf("%3d %6d %9.1f %7.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %4s  %s\n",
			sp.Player, sp.Frame, sp.StartMs, total,
			sp.NetMs, sp.HopMs, sp.QueueMs, sp.RenderMs, sp.EncodeMs, sp.DecodeMs, hit, bar.String())
	}
}

// hopLabel names a span's position in a distributed trace.
func hopLabel(hop uint8) string {
	switch hop {
	case 0:
		return "client"
	case 1:
		return "hop"
	case 2:
		return "owner"
	default:
		return fmt.Sprintf("hop%d", hop)
	}
}

// printTrace renders the multi-hop waterfall of one distributed trace:
// every span carrying the id, ordered client → proxy hop → owner. Each
// hop's row is scaled to the client's total (hops run on different
// clocks, so rows are not aligned in absolute time — each shows its own
// duration and stage mix).
func printTrace(spans []obs.FrameSpan, id uint64, width int) error {
	if width < 8 {
		width = 8
	}
	var hops []obs.FrameSpan
	for _, sp := range spans {
		if sp.TraceID == id {
			hops = append(hops, sp)
		}
	}
	if len(hops) == 0 {
		return fmt.Errorf("no spans carry trace id %d", id)
	}
	sort.SliceStable(hops, func(i, j int) bool { return hops[i].Hop < hops[j].Hop })
	maxMs := 0.0
	for _, sp := range hops {
		if d := sp.DisplayMs - sp.StartMs; d > maxMs {
			maxMs = d
		}
	}
	if maxMs <= 0 {
		maxMs = 1
	}
	fmt.Printf("trace %d (player %d, %d hops, %.1f ms full scale)\n", id, hops[0].Player, len(hops), maxMs)
	fmt.Printf("segments: %c net  %c hop  %c queue  %c render  %c encode  %c decode  %c other  %c slack\n",
		glyphNet, glyphHop, glyphQueue, glyphRender, glyphEncode, glyphDecode, glyphOther, glyphSlack)
	fmt.Printf("%-7s %7s %6s %6s %6s %6s %6s %6s  bar\n",
		"span", "total", "net", "hop", "queue", "rendr", "encod", "decod")
	for _, sp := range hops {
		total := sp.DisplayMs - sp.StartMs
		other := total - sp.SlackMs - sp.NetMs - sp.HopMs - sp.QueueMs - sp.RenderMs - sp.EncodeMs - sp.DecodeMs
		if other < 0 {
			other = 0
		}
		var bar strings.Builder
		scale := float64(width) / maxMs
		seg := func(ms float64, glyph rune) {
			for i := 0; i < int(ms*scale+0.5); i++ {
				bar.WriteRune(glyph)
			}
		}
		net := sp.NetMs
		if sp.Hop != 0 {
			// Server-side spans have no client network leg; FetchMs is the
			// hop's wall duration and the stages cover it.
			net = 0
		}
		seg(net, glyphNet)
		seg(sp.HopMs, glyphHop)
		seg(sp.QueueMs, glyphQueue)
		seg(sp.RenderMs, glyphRender)
		seg(sp.EncodeMs, glyphEncode)
		seg(sp.DecodeMs, glyphDecode)
		seg(other, glyphOther)
		seg(sp.SlackMs, glyphSlack)
		fmt.Printf("%-7s %7.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f  %s\n",
			hopLabel(sp.Hop), total,
			net, sp.HopMs, sp.QueueMs, sp.RenderMs, sp.EncodeMs, sp.DecodeMs, bar.String())
	}
	return nil
}

func printQoE(q obs.QoESnapshot) {
	fmt.Printf("QoE summary (window %.0f ms ending at %.1f ms, budget %.1f ms, %d spans)\n",
		q.WindowMs, q.EndMs, q.BudgetMs, q.Spans)
	fmt.Printf("%6s %7s %8s %12s %11s %9s %9s %9s\n",
		"player", "frames", "fps", "missed-vsync", "in-budget", "hit-rate", "mean-ms", "max-ms")
	row := func(p obs.PlayerQoE, label string) {
		fmt.Printf("%6s %7d %8.1f %11.1f%% %10.1f%% %8.1f%% %9.2f %9.2f\n",
			label, p.Frames, p.WindowFPS,
			p.MissedVsyncRatio*100, p.BudgetComplianceRatio*100, p.CacheHitRate*100,
			p.MeanFrameMs, p.MaxFrameMs)
	}
	for _, p := range q.Players {
		row(p, fmt.Sprintf("%d", p.Player))
	}
	if len(q.Players) != 1 {
		row(q.All, "all")
	}
}
