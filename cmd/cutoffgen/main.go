// Cutoffgen is the offline preprocessing tool (§6, the paper's 1200-line
// C# module): it runs the adaptive cutoff scheme over a game's virtual
// world, derives the per-leaf cache distance thresholds, and prints the
// resulting partition.
//
// Usage:
//
//	cutoffgen -game viking            # summary
//	cutoffgen -game viking -dump      # every leaf region
//	cutoffgen -game viking -k 10      # sampling parameter sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"coterie/internal/cutoff"
	"coterie/internal/device"
	"coterie/internal/games"
	"coterie/internal/render"
)

func main() {
	game := flag.String("game", "viking", "game to preprocess")
	k := flag.Int("k", 10, "locations sampled per region (paper: 10)")
	dump := flag.Bool("dump", false, "print every leaf region")
	thresholds := flag.Bool("thresholds", true, "derive cache distance thresholds (needs rendering)")
	out := flag.String("o", "", "write the preprocessing output (JSON) to this file")
	flag.Parse()

	spec, err := games.ByName(*game)
	if err != nil {
		log.Fatalf("cutoffgen: %v", err)
	}
	g := games.Build(spec)
	prof := device.Pixel2()

	params := cutoff.DefaultParams()
	params.K = *k
	start := time.Now()
	m, err := cutoff.Compute(g.Scene, prof.NearBERenderMs, params)
	if err != nil {
		log.Fatalf("cutoffgen: %v", err)
	}
	fmt.Printf("%s: %.0fx%.0f m, %.2fM grid points\n",
		spec.FullName, spec.Width, spec.Depth, float64(g.Scene.Grid.Points())/1e6)
	fmt.Printf("quadtree: %d leaf regions, depth %.2f avg / %d max, %d cutoff calculations, %v\n",
		m.Stats.LeafCount, m.Stats.DepthAvg, m.Stats.DepthMax, m.Stats.CutoffCalcs,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("paper (Table 3): %d leaves, depth %.2f/%d\n",
		spec.Paper.LeafRegions, spec.Paper.DepthAvg, spec.Paper.DepthMax)

	if *thresholds {
		r := render.New(g.Scene, render.DefaultConfig())
		tstart := time.Now()
		if err := cutoff.CalibrateThresholds(m, r, 4, cutoff.DefaultThresholdConfig()); err != nil {
			log.Fatalf("cutoffgen: thresholds: %v", err)
		}
		fmt.Printf("distance thresholds derived in %v\n", time.Since(tstart).Round(time.Millisecond))
	}

	radii := make([]float64, 0, len(m.Regions))
	for _, reg := range m.Regions {
		radii = append(radii, reg.Radius)
	}
	sort.Float64s(radii)
	q := func(p float64) float64 { return radii[int(p*float64(len(radii)-1))] }
	fmt.Printf("cutoff radii: min %.1f, p50 %.1f, max %.1f m\n", radii[0], q(0.5), radii[len(radii)-1])

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("cutoffgen: %v", err)
		}
		if err := m.Save(f); err != nil {
			log.Fatalf("cutoffgen: writing %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("cutoffgen: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *dump {
		fmt.Printf("%6s %8s %8s %10s %10s %12s\n", "id", "depth", "radius", "thresh", "density", "bounds")
		for _, reg := range m.Regions {
			fmt.Printf("%6d %8d %8.2f %10.3f %10.0f (%.0f,%.0f)-(%.0f,%.0f)\n",
				reg.ID, reg.Depth, reg.Radius, reg.DistThresh, reg.TriDensity,
				reg.Bounds.MinX, reg.Bounds.MinZ, reg.Bounds.MaxX, reg.Bounds.MaxZ)
		}
	}
}
