// Coterie-client plays a synthetic movement trace against a running
// coterie-server over real TCP/UDP. It runs the same per-frame pipeline
// (internal/runtime) that drives the paper's simulated experiments —
// similarity-cache lookup, tracked far-BE prefetch with lookahead, the
// Eq. 2 task join, vsync-floored display scheduling — just over live
// sockets instead of the discrete-event testbed. It reports the cache hit
// ratio, bytes fetched and fetch latency percentiles.
//
// Usage (after starting coterie-server -game viking):
//
//	coterie-client -game viking -addr localhost:7368 -seconds 30
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/server"
	"coterie/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("coterie-client: %v", err)
	}
}

// run keeps all failure paths as error returns so the deferred teardown
// in server.RunLive always sends MsgBye — the server sees a clean close,
// not a dead socket.
func run() error {
	game := flag.String("game", "viking", "game to play")
	addr := flag.String("addr", "localhost:7368", "server address")
	seconds := flag.Float64("seconds", 30, "trace length to replay")
	player := flag.Int("player", 0, "player id")
	seed := flag.Int64("seed", 42, "movement seed")
	speed := flag.Float64("speed", 1, "replay speed multiplier (1 = real time)")
	width := flag.Int("width", 0, "panorama width for local preprocessing (0 = default)")
	height := flag.Int("height", 0, "panorama height for local preprocessing (0 = default)")
	record := flag.String("record", "", "save the generated movement trace to this file")
	replay := flag.String("replay", "", "replay a previously recorded trace instead of generating one")
	admin := flag.String("admin", "", "admin HTTP listen address for /metrics, /trace, expvar and pprof (empty = disabled)")
	metricsJSON := flag.String("metrics-json", "", "write the metrics registry snapshot as JSON to this file at session end (\"-\" = stdout)")
	udpFrames := flag.Bool("udp-frames", false, "fetch frames over the datagram path (UDP-first with TCP fallback)")
	push := flag.Bool("push", false, "opt into trajectory-driven server push (requires -udp-frames and a server run with -push)")
	flag.Parse()

	spec, err := games.ByName(*game)
	if err != nil {
		return err
	}
	// The client runs the same offline preprocessing the server did so
	// its cache lookups use identical leaf regions and thresholds (the
	// paper ships the preprocessing output with the app).
	log.Printf("preparing %s client state...", spec.FullName)
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg: render.Config{W: *width, H: *height},
	})
	if err != nil {
		return err
	}

	tr, err := loadTrace(env, *replay, *record, *seconds, *seed, spec.Name)
	if err != nil {
		return err
	}

	// The registry exists whenever either observability flag asks for it;
	// a nil registry keeps the pipeline's instrument branches dead.
	var reg *obs.Registry
	if *admin != "" || *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			return fmt.Errorf("admin: %w", err)
		}
		adminSrv := &http.Server{Handler: obs.AdminMux(reg)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("coterie-client: admin listener failed: %v", err)
			}
		}()
		defer adminSrv.Close()
		log.Printf("admin endpoint on http://%s (/metrics, /trace, /qoe, /debug/pprof)", aln.Addr())
	}

	report, err := server.RunLive(env, *addr, tr, *player, server.LiveConfig{
		Speed:        *speed,
		DecodeFrames: true,
		Obs:          reg,
		UDPFrames:    *udpFrames,
		Push:         *push,
	})
	if report != nil {
		printReport(report, tr.Seconds())
	}
	if *metricsJSON != "" {
		if werr := writeMetrics(reg, *metricsJSON); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeMetrics dumps the registry snapshot plus a QoE summary over the
// recorded spans as indented JSON to a file or stdout ("-").
func writeMetrics(reg *obs.Registry, path string) error {
	dump := struct {
		Metrics obs.Snapshot    `json:"metrics"`
		QoE     obs.QoESnapshot `json:"qoe"`
	}{
		Metrics: reg.Snapshot(),
		QoE:     reg.QoE(obs.QoEConfig{Player: -1}),
	}
	b, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics-json: %w", err)
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("metrics-json: %w", err)
	}
	log.Printf("wrote metrics snapshot to %s", path)
	return nil
}

// loadTrace replays a recorded trace or generates one, optionally saving
// it for later replay.
func loadTrace(env *core.Env, replay, record string, seconds float64, seed int64, game string) (*trace.Trace, error) {
	var tr *trace.Trace
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, err
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading trace: %w", err)
		}
		if tr.Game != game {
			return nil, fmt.Errorf("trace is for %q, not %q", tr.Game, game)
		}
		log.Printf("replaying %s (%.0f s recorded)", replay, tr.Seconds())
	} else {
		tr = trace.Generate(env.Game, seconds, seed)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return nil, err
		}
		if err := tr.Save(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("saving trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		log.Printf("recorded movement trace to %s", record)
	}
	return tr, nil
}

func printReport(r *server.LiveReport, seconds float64) {
	fmt.Printf("replayed %.0fs of movement in %v\n", seconds, r.Wall.Round(time.Millisecond))
	fmt.Printf("pipeline: %d frames, %.1f fps, inter-frame %.1f ms (p99 %.1f ms)\n",
		r.Metrics.Frames, r.Metrics.FPS, r.Metrics.InterFrameMs, r.Metrics.P99InterFrameMs)
	fmt.Printf("cache: %d lookups, hit ratio %.1f%% (paper: ~80%%)\n",
		r.Cache.Hits+r.Cache.Misses, r.Cache.HitRatio()*100)
	fmt.Printf("fetched %d frames, %.2f MB total (%d prefetches issued)\n",
		r.Fetches, float64(r.BytesFetched)/1e6, r.Prefetch.Issued)
	if len(r.FetchLatenciesMs) > 0 {
		fmt.Printf("fetch latency p50 %.1f ms, p95 %.1f ms\n",
			r.LatencyQuantile(0.5), r.LatencyQuantile(0.95))
	}
	if r.FIDrops > 0 {
		fmt.Printf("FI sync: %d round trips dropped\n", r.FIDrops)
	}
}
