// Coterie-client plays a synthetic movement trace against a running
// coterie-server over real TCP, exercising the full client pipeline:
// per-tick cache lookup, far-BE prefetching on misses, frame decode, and
// FI synchronisation. It reports the cache hit ratio, bytes fetched and
// latency percentiles.
//
// Usage (after starting coterie-server -game viking):
//
//	coterie-client -game viking -addr localhost:7368 -seconds 30
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"coterie/internal/cache"
	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/fisync"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/server"
	"coterie/internal/trace"
)

func main() {
	game := flag.String("game", "viking", "game to play")
	addr := flag.String("addr", "localhost:7368", "server address")
	seconds := flag.Float64("seconds", 30, "trace length to replay")
	player := flag.Int("player", 0, "player id")
	seed := flag.Int64("seed", 42, "movement seed")
	record := flag.String("record", "", "save the generated movement trace to this file")
	replay := flag.String("replay", "", "replay a previously recorded trace instead of generating one")
	flag.Parse()

	spec, err := games.ByName(*game)
	if err != nil {
		log.Fatalf("coterie-client: %v", err)
	}
	// The client runs the same offline preprocessing the server did so
	// its cache lookups use identical leaf regions and thresholds (the
	// paper ships the preprocessing output with the app).
	log.Printf("preparing %s client state...", spec.FullName)
	env, err := core.PrepareEnv(spec, core.EnvOptions{})
	if err != nil {
		log.Fatalf("coterie-client: %v", err)
	}
	cl, err := server.Dial(*addr, spec.Name, uint8(*player))
	if err != nil {
		log.Fatalf("coterie-client: %v", err)
	}
	defer cl.Close()
	fi, err := server.DialFI(*addr)
	if err != nil {
		log.Fatalf("coterie-client: fi sync: %v", err)
	}
	defer fi.Close()

	var tr *trace.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatalf("coterie-client: %v", err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("coterie-client: reading trace: %v", err)
		}
		if tr.Game != spec.Name {
			log.Fatalf("coterie-client: trace is for %q, not %q", tr.Game, spec.Name)
		}
		log.Printf("replaying %s (%.0f s recorded)", *replay, tr.Seconds())
	} else {
		tr = trace.Generate(env.Game, *seconds, *seed)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatalf("coterie-client: %v", err)
		}
		if err := tr.Save(f); err != nil {
			log.Fatalf("coterie-client: saving trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("coterie-client: %v", err)
		}
		log.Printf("recorded movement trace to %s", *record)
	}
	meta := env.MetaFor()
	grid := env.Game.Scene.Grid
	cfg, _ := cache.Version(3)
	frameCache := cache.New(cfg)

	var fetchLatencies []float64
	var bytesFetched int64
	var seq uint32
	lastPt := geom.GridPoint{I: -1, J: -1}
	start := time.Now()
	for tick := 0; tick < tr.Len(); tick++ {
		pos := tr.Pos[tick]
		pt := grid.Snap(pos)
		if pt == lastPt {
			continue
		}
		lastPt = pt
		frameCache.SetPlayerPos(pos)

		leaf, sig, thresh := meta(pt)
		req := cache.Request{
			Point: pt, Pos: grid.Pos(pt), LeafID: leaf, NearSig: sig,
			DistThresh: thresh, Player: *player,
		}
		if _, ok := frameCache.Lookup(req); !ok {
			t0 := time.Now()
			data, err := cl.Fetch(pt)
			if err != nil {
				log.Fatalf("coterie-client: fetch %v: %v", pt, err)
			}
			fetchLatencies = append(fetchLatencies, float64(time.Since(t0).Microseconds())/1000)
			bytesFetched += int64(len(data))
			if _, err := codec.Decode(data); err != nil {
				log.Fatalf("coterie-client: frame %v does not decode: %v", pt, err)
			}
			frameCache.Insert(cache.Entry{
				Point: pt, Pos: req.Pos, LeafID: leaf, NearSig: sig,
				Data: data, Size: len(data), Owner: *player,
			})
		}
		// FI sync each tick over UDP, like the paper's PUN path; a lost
		// datagram just means syncing again next frame.
		seq++
		if _, err := fi.Sync(fisync.State{Player: uint8(*player), Seq: seq, Pos: pos}, 250*time.Millisecond); err != nil {
			log.Printf("coterie-client: FI sync dropped: %v", err)
		}
	}
	elapsed := time.Since(start)

	st := frameCache.Stats()
	fmt.Printf("replayed %.0fs of movement in %v\n", *seconds, elapsed.Round(time.Millisecond))
	fmt.Printf("cache: %d lookups, hit ratio %.1f%% (paper: ~80%%)\n",
		st.Hits+st.Misses, st.HitRatio()*100)
	fmt.Printf("fetched %d frames, %.2f MB total\n", len(fetchLatencies), float64(bytesFetched)/1e6)
	if len(fetchLatencies) > 0 {
		sort.Float64s(fetchLatencies)
		q := func(p float64) float64 {
			return fetchLatencies[int(math.Min(p*float64(len(fetchLatencies)), float64(len(fetchLatencies)-1)))]
		}
		fmt.Printf("fetch latency p50 %.1f ms, p95 %.1f ms\n", q(0.5), q(0.95))
	}
}
