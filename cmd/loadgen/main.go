// Loadgen drives N concurrent synthetic players against a Coterie frame
// server and reports throughput, fetch-latency percentiles, and the
// frame-store hit mix. Point it at a live server, or let it host one
// in-process (the default) to measure the server hot path without network
// noise:
//
//	loadgen -game pool -players 16 -duration 5s
//	loadgen -addr host:7368 -game viking -players 64 -rate 30
//
// Against a cluster, -addr takes the comma-separated node list; players
// are assigned round-robin (player p connects to the p mod n-th node):
//
//	loadgen -addr host1:7368,host2:7368 -game viking -players 64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/server"
)

func main() {
	addr := flag.String("addr", "", "frame server address, or a comma-separated cluster node list (players assigned round-robin); empty hosts one in-process")
	game := flag.String("game", "pool", "game to load (must match the server's)")
	players := flag.Int("players", 4, "concurrent synthetic players")
	rate := flag.Float64("rate", 0, "per-player request rate in frames/sec (0 = unthrottled)")
	duration := flag.Duration("duration", 2*time.Second, "run length")
	pattern := flag.String("pattern", loadgen.PatternWalk, "movement: walk, static or scatter")
	stepM := flag.Float64("step", 0, "walk step per request in metres (0 = a few grid cells)")
	seed := flag.Int64("seed", 1, "movement RNG seed")
	deadlineMs := flag.Float64("deadline-ms", 0, "per-request deadline budget in ms (0 = none; 16.7 = 60 Hz vsync)")
	sched := flag.Bool("sched", true, "in-process server: EDF deadline scheduling and admission control")
	degrade := flag.Bool("degrade", true, "in-process server: quality-degrade ladder under deadline pressure")
	width := flag.Int("width", 256, "in-process server: panorama width")
	height := flag.Int("height", 128, "in-process server: panorama height")
	budget := flag.Int64("store-budget", 0, "in-process server: frame store byte budget (0 = unbounded)")
	adminAddrs := flag.String("admin-addrs", "", "comma-separated admin HTTP addresses of the target cluster; the final report embeds a fleet view scraped from them")
	udpFrames := flag.Bool("udp-frames", false, "fetch frames over the datagram path (UDP-first with TCP fallback); the in-process server grows a UDP listener")
	push := flag.Bool("push", false, "opt into trajectory-driven server push (needs -udp-frames; enables push on the in-process server)")
	lossRate := flag.Float64("loss", 0, "receive-side datagram loss rate injected per player (needs -udp-frames)")
	lossSeed := flag.Int64("loss-seed", 1, "seed for the injected datagram loss")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := loadgen.Config{
		Addr: *addr, Game: *game, Players: *players, Rate: *rate,
		Duration: *duration, Pattern: *pattern, StepM: *stepM, Seed: *seed,
		DeadlineMs: *deadlineMs,
		UDPFrames:  *udpFrames, Push: *push,
		LossRate: *lossRate, LossSeed: *lossSeed,
	}
	if *adminAddrs != "" {
		for _, a := range strings.Split(*adminAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.AdminAddrs = append(cfg.AdminAddrs, a)
			}
		}
	}
	if *addr == "" {
		srv, hosted, stop, err := hostServer(*game, *width, *height, *budget, *udpFrames)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer stop()
		srv.SetSchedEnabled(*sched)
		srv.SetDegradeEnabled(*degrade)
		srv.SetPushEnabled(*push)
		cfg.Addr, cfg.Server = hosted, srv
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("loadgen: %d players on %q for %v (%s)\n",
		rep.Players, *game, rep.Duration.Round(time.Millisecond), *pattern)
	fmt.Printf("  throughput  %.1f frames/sec (%d frames, %d errors, %.1f MB)\n",
		rep.FramesPerSec, rep.Frames, rep.Errors, float64(rep.Bytes)/1e6)
	fmt.Printf("  latency     p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms)
	if rep.Errors > 0 {
		fmt.Printf("  err latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms (%d errors)\n",
			rep.ErrP50Ms, rep.ErrP95Ms, rep.ErrP99Ms, rep.Errors)
	}
	budgetMs := rep.DeadlineMs
	if budgetMs <= 0 {
		budgetMs = obs.FrameBudgetMs
	}
	fmt.Printf("  deadline    %.1f%% of frames within %.1f ms budget\n",
		100*rep.DeadlineCompliance, budgetMs)
	fmt.Printf("  rungs       %d exact, %d stale, %d reproject, %d lowres\n",
		rep.RungExact, rep.RungStale, rep.RungReproject, rep.RungLowRes)
	if rep.PeerFrames > 0 || rep.FailoverFrames > 0 {
		fmt.Printf("  cluster     %d peer-fetched, %d failover re-renders\n",
			rep.PeerFrames, rep.FailoverFrames)
	}
	fmt.Printf("  store       %.1f%% hits (%d hits, %d joins, %d renders)\n",
		100*rep.HitRate, rep.Hits, rep.Joins, rep.Renders)
	fmt.Printf("  wire        %.0f bytes/frame mean (%d delta frames)\n",
		rep.BytesPerFrame, rep.DeltaFrames)
	if rep.UDPFetches > 0 || rep.TCPFallbacks > 0 {
		fmt.Printf("  datagram    %d UDP fetches, %d TCP fallbacks, push hit %.1f%% (%d pushed, %.1f KB wasted)\n",
			rep.UDPFetches, rep.TCPFallbacks, 100*rep.PushHitRatio,
			rep.PushedFrames, float64(rep.WastedPushBytes)/1e3)
		fmt.Printf("  loss repair %d NACKs sent, %d FEC-recovered, %d corrupt dropped\n",
			rep.NacksSent, rep.FECRecovered, rep.CorruptFrames)
	}
	if rep.StoreBytes >= 0 {
		fmt.Printf("  residency   %d bytes, %d evictions\n", rep.StoreBytes, rep.Evictions)
	}
	if rep.Fleet != nil {
		fmt.Printf("  fleet       %d/%d nodes up: %d frames served, burn 1m %.2f / 5m %.2f\n",
			rep.Fleet.NodesUp, rep.Fleet.NodesUp+rep.Fleet.NodesStale,
			rep.Fleet.FramesServed, rep.Fleet.BurnRate1m, rep.Fleet.BurnRate5m)
		for _, n := range rep.Fleet.Nodes {
			if n.Stale {
				fmt.Printf("    %-22s stale (%s)\n", n.Addr, n.Err)
				continue
			}
			fmt.Printf("    %-22s %d served (%d peer, %d failover), burn 1m %.2f\n",
				n.Addr, n.FramesServed, n.PeerFramesServed, n.PeerFailovers, n.SLO.Short.BurnRate)
		}
	}
}

// hostServer prepares the game environment and serves it on a loopback
// port, returning the server, its address, and a stop function. With udp
// set, a UDP listener on the same port carries the datagram frame path.
func hostServer(game string, w, h int, budget int64, udp bool) (*server.Server, string, func(), error) {
	spec, err := games.ByName(game)
	if err != nil {
		return nil, "", nil, err
	}
	log.Printf("preparing %s in-process...", spec.FullName)
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg: render.Config{W: w, H: h},
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	srv := server.New(env)
	if budget > 0 {
		srv.SetStoreBudget(budget)
	}
	go srv.Serve(ln)
	stop := func() { ln.Close() }
	if udp {
		pc, err := net.ListenPacket("udp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, "", nil, err
		}
		go srv.ServeFIUDP(pc)
		stop = func() { pc.Close(); ln.Close() }
	}
	return srv, ln.Addr().String(), stop, nil
}
