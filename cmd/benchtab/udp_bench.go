package main

import (
	"fmt"
	"net"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/render"
	"coterie/internal/server"
)

// udpRow is one arm of the UDP-vs-TCP A/B: the same 16-player walk load
// fetched over the TCP request/reply baseline, or over the datagram path
// (UDP-first with server push) at a given injected loss rate.
type udpRow struct {
	Mode         string  `json:"mode"` // "tcp" or "udp"
	LossPct      float64 `json:"loss_pct"`
	FramesPerSec float64 `json:"frames_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// GoodputMbps counts only bytes of frames the players actually
	// displayed; pushed-but-wasted bytes are excluded (they are the push
	// machinery's overhead, reported separately).
	GoodputMbps float64 `json:"goodput_mbps"`
	// Datagram-path economy (udp rows only).
	UDPFetches      int64   `json:"udp_fetches,omitempty"`
	TCPFallbacks    int64   `json:"tcp_fallbacks,omitempty"`
	PushHitRatio    float64 `json:"push_hit_ratio,omitempty"`
	PushedFrames    int64   `json:"pushed_frames,omitempty"`
	WastedPushBytes int64   `json:"wasted_push_bytes,omitempty"`
	NacksSent       int64   `json:"nacks_sent,omitempty"`
	FECRecovered    int64   `json:"fec_recovered,omitempty"`
	CorruptFrames   int64   `json:"corrupt_frames"`
}

// udpVsTCP is the datagram frame-path bench section.
type udpVsTCP struct {
	Players int      `json:"players"`
	Rate    float64  `json:"rate"`
	Rows    []udpRow `json:"rows"`
	// Headline: lossless p50 fetch latency on each path. The datagram
	// path wins by skipping the TCP request round trip whenever a pushed
	// or previously-delivered frame is already client-resident.
	TCPP50Ms float64 `json:"tcp_p50_ms"`
	UDPP50Ms float64 `json:"udp_p50_ms"`
}

// udpABLossRates are the injected receive-side loss rates of the UDP arms.
var udpABLossRates = []float64{0, 0.01, 0.05}

const (
	udpABPlayers = 16
	udpABRate    = 60.0
)

// runUDPvsTCP hosts a pool server in-process (TCP + UDP listeners on the
// same loopback port) and measures the same warm walk load over both
// frame paths. Players walk at human speed, a quarter grid cell per vsync
// tick, so the server's constant-velocity predictor has a trackable
// trajectory — the regime where push pays. Each arm gets its own server
// and an identical trajectory warm-up so the A/B isolates the transport.
func runUDPvsTCP(quick bool) (*udpVsTCP, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}

	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	const seed = 1
	grid := env.Game.Scene.Grid
	stepM := grid.Step / 4
	spreadM := (grid.Bounds.MaxX - grid.Bounds.MinX) / 4
	steps := int(dur.Seconds()*udpABRate) + 4

	runArm := func(udpOn bool, loss float64) (udpRow, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return udpRow{}, err
		}
		defer ln.Close()
		srv := server.New(env)
		go srv.Serve(ln)
		if udpOn {
			// UDP shares the TCP listener's port, like the real server
			// binary: one address serves both frame paths.
			pc, err := net.ListenPacket("udp", ln.Addr().String())
			if err != nil {
				return udpRow{}, err
			}
			defer pc.Close()
			srv.SetPushEnabled(true)
			go srv.ServeFIUDP(pc)
		}
		if _, err := loadgen.Warm(loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: udpABPlayers, Seed: seed, StepM: stepM, SpreadM: spreadM,
		}, steps); err != nil {
			return udpRow{}, fmt.Errorf("warmup: %w", err)
		}
		rep, err := loadgen.Run(loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: udpABPlayers, Rate: udpABRate, Duration: dur,
			Seed: seed, StepM: stepM, SpreadM: spreadM, Server: srv,
			UDPFrames: udpOn, Push: udpOn, LossRate: loss, LossSeed: 7,
		})
		if err != nil {
			return udpRow{}, err
		}
		row := udpRow{
			Mode:         "tcp",
			LossPct:      100 * loss,
			FramesPerSec: rep.FramesPerSec,
			P50Ms:        rep.P50Ms,
			P99Ms:        rep.P99Ms,
		}
		if secs := rep.Duration.Seconds(); secs > 0 {
			row.GoodputMbps = 8 * float64(rep.Bytes) / secs / 1e6
		}
		if udpOn {
			row.Mode = "udp"
			row.UDPFetches = rep.UDPFetches
			row.TCPFallbacks = rep.TCPFallbacks
			row.PushHitRatio = rep.PushHitRatio
			row.PushedFrames = rep.PushedFrames
			row.WastedPushBytes = rep.WastedPushBytes
			row.NacksSent = rep.NacksSent
			row.FECRecovered = rep.FECRecovered
			row.CorruptFrames = rep.CorruptFrames
		}
		fmt.Printf("[udp-vs-tcp: %s loss %4.1f%%  p50 %6.2f ms  p99 %7.2f ms  %6.2f Mbps  push-hit %4.1f%%  %d falls  %d nacks  %d corrupt]\n",
			row.Mode, row.LossPct, row.P50Ms, row.P99Ms, row.GoodputMbps,
			100*row.PushHitRatio, row.TCPFallbacks, row.NacksSent, row.CorruptFrames)
		return row, nil
	}

	out := &udpVsTCP{Players: udpABPlayers, Rate: udpABRate}
	tcpRow, err := runArm(false, 0)
	if err != nil {
		return nil, fmt.Errorf("udp-vs-tcp tcp arm: %w", err)
	}
	out.Rows = append(out.Rows, tcpRow)
	out.TCPP50Ms = tcpRow.P50Ms
	for _, loss := range udpABLossRates {
		row, err := runArm(true, loss)
		if err != nil {
			return nil, fmt.Errorf("udp-vs-tcp udp arm (%.0f%% loss): %w", 100*loss, err)
		}
		out.Rows = append(out.Rows, row)
		if loss == 0 {
			out.UDPP50Ms = row.P50Ms
		}
	}
	return out, nil
}
