package main

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"coterie/internal/cluster"
	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/render"
	"coterie/internal/server"
)

// clusterScaleout is one row of the cluster scale-out bench: the same
// per-node offered load against 1, 2, and 4 in-process nodes joined by
// rendezvous-hashed ownership, players spread round-robin.
type clusterScaleout struct {
	Nodes   int `json:"nodes"`
	Players int `json:"players"`
	// FramesPerSec is the aggregate cluster throughput; PerNodeFPS divides
	// it by the node count, and Efficiency normalises that against the
	// single-node row (1.0 = perfect scale-out). On one machine every
	// node shares the same cores, so Efficiency mostly measures cluster
	// overhead (the peer hop, replication) rather than real speedup.
	FramesPerSec float64 `json:"frames_per_sec"`
	PerNodeFPS   float64 `json:"per_node_fps"`
	Efficiency   float64 `json:"efficiency"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// PeerFrames/FailoverFrames are the origin mix the players saw;
	// PeerFetchRatio is PeerFrames over all frames. The ratio starts near
	// (n-1)/n on a cold cluster and falls as read-through replication
	// turns remote points into local store hits.
	PeerFrames     int64   `json:"peer_frames"`
	FailoverFrames int64   `json:"failover_frames"`
	PeerFetchRatio float64 `json:"peer_fetch_ratio"`
	HitRate        float64 `json:"hit_rate"`
}

// clusterScaleoutNodes are the cluster sizes benched.
var clusterScaleoutNodes = []int{1, 2, 4}

// playersPerNode fixes the offered load per node so the rows compare
// scale-out, not load level.
const playersPerNode = 4

// runClusterScaleout hosts n in-process cluster nodes over loopback TCP
// (shared prepared environment, separate frame stores) and drives the
// same walk load per node at each cluster size.
func runClusterScaleout(quick bool) ([]clusterScaleout, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}
	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}

	var rows []clusterScaleout
	var basePerNode float64
	for _, n := range clusterScaleoutNodes {
		rep, err := runClusterNodes(env, n, playersPerNode*n, dur)
		if err != nil {
			return nil, fmt.Errorf("cluster-scaleout %dn: %w", n, err)
		}
		if rep.Errors > 0 {
			return nil, fmt.Errorf("cluster-scaleout %dn: %d request errors", n, rep.Errors)
		}
		row := clusterScaleout{
			Nodes:          n,
			Players:        playersPerNode * n,
			FramesPerSec:   rep.FramesPerSec,
			PerNodeFPS:     rep.FramesPerSec / float64(n),
			P50Ms:          rep.P50Ms,
			P99Ms:          rep.P99Ms,
			PeerFrames:     rep.PeerFrames,
			FailoverFrames: rep.FailoverFrames,
			HitRate:        rep.HitRate,
		}
		if rep.Frames > 0 {
			row.PeerFetchRatio = float64(rep.PeerFrames) / float64(rep.Frames)
		}
		if n == 1 {
			basePerNode = row.PerNodeFPS
		}
		if basePerNode > 0 {
			row.Efficiency = row.PerNodeFPS / basePerNode
		}
		rows = append(rows, row)
		fmt.Printf("[cluster-scaleout: %d nodes %2d players  %8.0f frames/sec  eff %.2f  peer %4.1f%%  p99 %6.2f ms]\n",
			n, row.Players, row.FramesPerSec, row.Efficiency, 100*row.PeerFetchRatio, row.P99Ms)
	}
	return rows, nil
}

// runClusterNodes stands up n cluster nodes on loopback listeners, runs
// the load with players spread round-robin across them, and tears the
// cluster down.
func runClusterNodes(env *core.Env, n, players int, dur time.Duration) (loadgen.Report, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Report{}, err
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := range lns {
		srv := server.New(env)
		srv.DrainTimeout = 500 * time.Millisecond
		if n > 1 {
			cl, err := cluster.New(cluster.Config{
				Self:  addrs[i],
				Nodes: addrs,
				Game:  env.Game.Spec.Name,
			})
			if err != nil {
				return loadgen.Report{}, err
			}
			cl.Start()
			defer cl.Close()
			srv.SetCluster(cl)
		}
		go srv.ServeContext(ctx, lns[i])
	}
	return loadgen.Run(loadgen.Config{
		Addr: strings.Join(addrs, ","), Game: env.Game.Spec.Name,
		Players: players, Duration: dur, Seed: 1,
		Pattern: loadgen.PatternWalk,
	})
}
