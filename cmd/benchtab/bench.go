package main

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"coterie/internal/codec"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/img"
	"coterie/internal/render"
	"coterie/internal/ssim"
	"coterie/internal/transport"
)

// benchReport is the -bench-json payload: wall-clock per experiment plus the
// hot-path micro-benchmarks, so a run leaves a machine-readable performance
// record alongside the printed tables.
type benchReport struct {
	Generated   string       `json:"generated"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Parallel    int          `json:"parallel"`
	Quick       bool         `json:"quick"`
	Experiments []expTiming  `json:"experiments"`
	Micro       []microBench `json:"micro"`
	// ServerThroughput is the multi-player server scaling bench:
	// loopback-TCP fetch throughput at increasing player counts.
	ServerThroughput []serverThroughput `json:"server_throughput,omitempty"`
	// DeltaSavings is the delta-codec A/B: the same walk-pattern load run
	// with delta coding off and on, and the bytes-per-frame reduction.
	DeltaSavings *deltaSavings `json:"delta_savings,omitempty"`
	// DeadlineAB is the deadline-scheduling A/B: walk load with every
	// request stamped with the 16.7 ms vsync budget, EDF scheduler and
	// degrade ladder off vs on, at increasing player counts.
	DeadlineAB *deadlineAB `json:"deadline_ab,omitempty"`
	// ClusterScaleout is the multi-node bench: the same per-node walk load
	// against 1/2/4 rendezvous-hashed in-process nodes, with the peer-fetch
	// mix and per-node efficiency.
	ClusterScaleout []clusterScaleout `json:"cluster_scaleout,omitempty"`
	// ObsOverhead is the observability A/B: the same walk load with the
	// registry + trace + SLO pipeline off and on, and the throughput cost.
	ObsOverhead *obsOverhead `json:"obs_overhead,omitempty"`
	// UDPvsTCP is the datagram frame-path A/B: the same walk load fetched
	// over the TCP baseline vs UDP with trajectory-driven push, at 0/1/5%
	// injected datagram loss.
	UDPvsTCP *udpVsTCP `json:"udp_vs_tcp,omitempty"`
}

type expTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

type microBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// smoothGray builds a blocky random grayscale frame — flat cells with sharp
// edges, the same shape the ssim package's own benchmarks use, so the JSON
// numbers are comparable to `go test -bench` output.
func smoothGray(rng *rand.Rand, w, h, cell int) *img.Gray {
	g := img.NewGray(w, h)
	cw := w/cell + 1
	base := make([]uint8, cw*(h/cell+1))
	for i := range base {
		base[i] = uint8(rng.Intn(256))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, base[(y/cell)*cw+x/cell])
		}
	}
	return g
}

func measure(name string, fn func(b *testing.B)) microBench {
	r := testing.Benchmark(fn)
	return microBench{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runMicroBenches exercises the allocation-free hot paths: the pooled SSIM
// comparer, the renderer's ray-direction LUT (against the inline-trig
// fallback), the codec round trip, and the per-frame transport codec
// (which carries the span-v2 trace context, so any per-frame allocation
// creep there shows up in the bench-diff gate).
func runMicroBenches() ([]microBench, error) {
	rng := rand.New(rand.NewSource(1))
	a := smoothGray(rng, 256, 128, 4)
	b := smoothGray(rng, 256, 128, 4)

	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	g := games.Build(spec)
	cfg := render.Config{W: 256, H: 128, Parallel: 1}
	lut := render.New(g.Scene, cfg)
	noLUT := &render.Renderer{Scene: g.Scene, Cfg: cfg}
	eye := g.Scene.EyeAt(g.Scene.Bounds.Center())
	pano := lut.Panorama(eye, 0, math.Inf(1), nil)
	stream := codec.Encode(pano, codec.DefaultCRF)

	// Delta fixtures mirror the server's canonical-reference rule: the
	// residual is coded between decoded reconstructions of two renders one
	// walk step apart, the realistic delta-path input.
	eye2 := g.Scene.EyeAt(g.Scene.Bounds.Center().Add(geom.V2(0.3, 0.1)))
	pano2 := lut.Panorama(eye2, 0, math.Inf(1), nil)
	ref, err := codec.Decode(stream)
	if err != nil {
		return nil, err
	}
	cur, err := codec.Decode(codec.Encode(pano2, codec.DefaultCRF))
	if err != nil {
		return nil, err
	}
	delta := codec.DeltaEncode(cur, ref, codec.DefaultCRF)

	return []microBench{
		measure("ssim.Mean/256x128", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := ssim.Mean(a, b); err != nil {
					bb.Fatal(err)
				}
			}
		}),
		measure("render.Panorama/lut", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				lut.ReleaseGray(lut.Panorama(eye, 0, math.Inf(1), nil))
			}
		}),
		measure("render.Panorama/no-lut", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				noLUT.ReleaseGray(noLUT.Panorama(eye, 0, math.Inf(1), nil))
			}
		}),
		measure("codec.Encode/256x128", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				codec.Encode(pano, codec.DefaultCRF)
			}
		}),
		measure("codec.Decode/256x128", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := codec.Decode(stream); err != nil {
					bb.Fatal(err)
				}
			}
		}),
		measure("codec.Decode/pooled", func(bb *testing.B) {
			// Decode with the output raster returned to the codec's
			// freelist: the per-frame client decode path, which must stay
			// allocation-free at steady state.
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				g, err := codec.Decode(stream)
				if err != nil {
					bb.Fatal(err)
				}
				codec.ReleaseGray(g)
			}
		}),
		measure("codec.DeltaEncode/256x128", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				codec.DeltaEncode(cur, ref, codec.DefaultCRF)
			}
		}),
		measure("codec.DeltaDecode/pooled", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				g, err := codec.DeltaDecode(delta, ref)
				if err != nil {
					bb.Fatal(err)
				}
				codec.ReleaseGray(g)
			}
		}),
		measure("render.Reproject/256x128", func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				lut.ReleaseGray(lut.Reproject(pano, eye, eye2, 60))
			}
		}),
		measure("transport.FrameRequest/roundtrip", func(bb *testing.B) {
			req := transport.FrameRequest{
				Player: 1,
				Point:  geom.GridPoint{I: 42, J: -7},
				ReqID:  9,
				SentMs: 1234.5,
			}
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := transport.DecodeFrameRequest(transport.EncodeFrameRequest(req)); err != nil {
					bb.Fatal(err)
				}
			}
		}),
		measure("transport.FrameReply/roundtrip", func(bb *testing.B) {
			reply := transport.FrameReply{
				Point:   geom.GridPoint{I: 42, J: -7},
				ReqID:   9,
				RecvMs:  1000,
				SendMs:  1010,
				QueueMs: 1, RenderMs: 6, EncodeMs: 3,
				Data: stream,
			}
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := transport.DecodeFrameReply(transport.EncodeFrameReply(reply)); err != nil {
					bb.Fatal(err)
				}
			}
		}),
	}, nil
}

// writeBenchJSON assembles and writes the -bench-json report.
func writeBenchJSON(path string, parallel int, quick bool, timings []expTiming) error {
	micro, err := runMicroBenches()
	if err != nil {
		return err
	}
	throughput, err := runServerThroughput(quick)
	if err != nil {
		return err
	}
	savings, err := runDeltaSavings(quick)
	if err != nil {
		return err
	}
	deadlines, err := runDeadlineAB(quick)
	if err != nil {
		return err
	}
	scaleout, err := runClusterScaleout(quick)
	if err != nil {
		return err
	}
	overhead, err := runObsOverhead(quick)
	if err != nil {
		return err
	}
	udpTCP, err := runUDPvsTCP(quick)
	if err != nil {
		return err
	}
	rep := benchReport{
		Generated:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Parallel:         parallel,
		Quick:            quick,
		Experiments:      timings,
		Micro:            micro,
		ServerThroughput: throughput,
		DeltaSavings:     savings,
		DeadlineAB:       deadlines,
		ClusterScaleout:  scaleout,
		ObsOverhead:      overhead,
		UDPvsTCP:         udpTCP,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
