package main

import (
	"fmt"
	"net"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/server"
)

// deadlineRow is one cell of the deadline A/B: a player count crossed with
// the EDF scheduler on or off, every request stamped with the 16.7 ms
// vsync budget.
type deadlineRow struct {
	Players      int     `json:"players"`
	Sched        bool    `json:"sched"`
	FramesPerSec float64 `json:"frames_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// Compliance is the fraction of successful fetches that fit the budget.
	Compliance float64 `json:"deadline_compliance"`
	// Errors counts shed requests (admission control; sched-on only).
	Errors int64 `json:"errors"`
	// The degrade-rung mix of what was served: exact renders, stale
	// similar frames, deadline reprojections, low-res upscales.
	RungExact     int64 `json:"rung_exact"`
	RungStale     int64 `json:"rung_stale"`
	RungReproject int64 `json:"rung_reproject"`
	RungLowRes    int64 `json:"rung_lowres"`
}

// deadlineAB is the deadline-scheduling bench section: the same walk load
// with the staged pipeline off (pure FIFO) and on (EDF + admission control
// + degrade ladder), at increasing player counts.
type deadlineAB struct {
	DeadlineMs float64       `json:"deadline_ms"`
	Rows       []deadlineRow `json:"rows"`
	// MaxPlayersWithinBudget is the headline: the largest sched-on player
	// count whose p99 fetch latency still fit the frame budget.
	MaxPlayersWithinBudget int `json:"max_players_within_budget"`
}

// deadlineABPlayers are the fan-out points of the deadline A/B.
var deadlineABPlayers = []int{4, 16, 64}

// deadlineABRate is the per-player request rate: one fetch per 60 Hz vsync
// tick, the stream the 16.7 ms deadline models.
const deadlineABRate = 60.0

// runDeadlineAB hosts a pool server in-process and measures walk-load fetch
// latency against the 16.7 ms budget with the scheduler off, then on. The
// load models real headsets: each player requests at vsync rate (60 Hz)
// and walks at human speed — a quarter grid cell per tick, so consecutive
// frames land on the same or an adjacent grid point, the frame-similarity
// regime the paper's design is built on. A warm-up pass replays every
// player's exact trajectory first (the load-harness stand-in for the
// paper's offline pre-rendering of all reachable points, §5.1), so both
// arms fetch from the same warm store and the A/B isolates scheduling.
func runDeadlineAB(quick bool) (*deadlineAB, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}

	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	const seed = 1
	grid := env.Game.Scene.Grid
	stepM := grid.Step / 4
	// Disperse players over the central half of the map: multiplayer
	// sessions spread across the scene, each player working their own
	// region of the frame store.
	spreadM := (grid.Bounds.MaxX - grid.Bounds.MinX) / 4
	maxPlayers := deadlineABPlayers[len(deadlineABPlayers)-1]
	// A measured run takes rate*dur trajectory steps per player. Warm the
	// first half of each trajectory: the back half walks into cold grid
	// cells, so the run exercises the degrade ladder the way a live
	// session does when players leave pre-rendered ground.
	steps := int(dur.Seconds()*deadlineABRate) + 4

	// Each arm gets its own server (and so its own frame store) with an
	// identical trajectory warm-up: on a shared store the first arm would
	// render the cold cells and hand the second arm a warmer world.
	runArm := func(sched bool) ([]deadlineRow, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		srv := server.New(env)
		srv.SetSchedEnabled(sched)
		go srv.Serve(ln)
		points, err := loadgen.Warm(loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: maxPlayers, Seed: seed, StepM: stepM, SpreadM: spreadM,
		}, steps/2)
		if err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
		fmt.Printf("[deadline-ab: sched=%-5v warmed %d trajectory points (%d players x %d steps)]\n",
			sched, points, maxPlayers, steps/2)
		var rows []deadlineRow
		for _, players := range deadlineABPlayers {
			rep, err := loadgen.Run(loadgen.Config{
				Addr: ln.Addr().String(), Game: "pool",
				Players: players, Rate: deadlineABRate, Duration: dur,
				Seed: seed, StepM: stepM, SpreadM: spreadM,
				DeadlineMs: obs.FrameBudgetMs, Server: srv,
			})
			if err != nil {
				return nil, fmt.Errorf("%dp: %w", players, err)
			}
			row := deadlineRow{
				Players:       players,
				Sched:         sched,
				FramesPerSec:  rep.FramesPerSec,
				P50Ms:         rep.P50Ms,
				P99Ms:         rep.P99Ms,
				Compliance:    rep.DeadlineCompliance,
				Errors:        rep.Errors,
				RungExact:     rep.RungExact,
				RungStale:     rep.RungStale,
				RungReproject: rep.RungReproject,
				RungLowRes:    rep.RungLowRes,
			}
			rows = append(rows, row)
			fmt.Printf("[deadline-ab: %2d players sched=%-5v  p99 %7.2f ms  within-budget %5.1f%%  rungs %d/%d/%d/%d  %d shed]\n",
				players, sched, row.P99Ms, 100*row.Compliance,
				row.RungExact, row.RungStale, row.RungReproject, row.RungLowRes, row.Errors)
		}
		return rows, nil
	}

	out := &deadlineAB{DeadlineMs: obs.FrameBudgetMs}
	for _, sched := range []bool{false, true} {
		rows, err := runArm(sched)
		if err != nil {
			return nil, fmt.Errorf("deadline-ab sched=%v: %w", sched, err)
		}
		out.Rows = append(out.Rows, rows...)
		for _, row := range rows {
			if row.Sched && row.P99Ms <= obs.FrameBudgetMs && row.Players > out.MaxPlayersWithinBudget {
				out.MaxPlayersWithinBudget = row.Players
			}
		}
	}
	return out, nil
}
