package main

import (
	"fmt"
	"net"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/render"
	"coterie/internal/server"
)

// serverThroughput is one row of the server scaling bench: synthetic
// players hammering one in-process frame server over loopback TCP.
type serverThroughput struct {
	Players       int     `json:"players"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	DeltaFrames   int64   `json:"delta_frames"`
}

// serverThroughputPlayers are the fan-out points of the scaling bench.
var serverThroughputPlayers = []int{1, 4, 16, 64}

// runServerThroughput hosts a pool-game server in-process and measures
// end-to-end fetch throughput at increasing player counts. Players walk
// (the realistic mixed hit/render stream) under a store budget small
// enough that 64 walkers force evictions, so the bench covers the
// store's full hit/miss/evict cycle — not just the warm path.
func runServerThroughput(quick bool) ([]serverThroughput, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	srv := server.New(env)
	srv.SetStoreBudget(4 << 20)
	go srv.Serve(ln)

	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	var rows []serverThroughput
	for _, players := range serverThroughputPlayers {
		rep, err := loadgen.Run(loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: players, Duration: dur, Seed: 1, Server: srv,
		})
		if err != nil {
			return nil, fmt.Errorf("server-throughput %dp: %w", players, err)
		}
		if rep.Errors > 0 {
			return nil, fmt.Errorf("server-throughput %dp: %d request errors", players, rep.Errors)
		}
		rows = append(rows, serverThroughput{
			Players:       players,
			FramesPerSec:  rep.FramesPerSec,
			P50Ms:         rep.P50Ms,
			P95Ms:         rep.P95Ms,
			P99Ms:         rep.P99Ms,
			HitRate:       rep.HitRate,
			Evictions:     rep.Evictions,
			BytesPerFrame: rep.BytesPerFrame,
			DeltaFrames:   rep.DeltaFrames,
		})
		fmt.Printf("[server-throughput: %2d players  %8.0f frames/sec  p99 %6.2f ms  hit %4.1f%%  %5.0f B/frame]\n",
			players, rep.FramesPerSec, rep.P99Ms, 100*rep.HitRate, rep.BytesPerFrame)
	}
	return rows, nil
}

// deltaSavings is the delta-codec A/B row: the same walk-pattern load run
// against one server with delta coding disabled, then enabled. Walking
// players revisit nearby grid points, so with delta on the server finds
// held references constantly — the reduction column is the wire saving
// the codec buys on the realistic request stream.
type deltaSavings struct {
	Pattern           string  `json:"pattern"`
	Players           int     `json:"players"`
	BytesPerFrameOff  float64 `json:"bytes_per_frame_off"`
	BytesPerFrameOn   float64 `json:"bytes_per_frame_on"`
	DeltaFrames       int64   `json:"delta_frames"`
	ReductionFraction float64 `json:"reduction_fraction"`
}

// runDeltaSavings measures the A/B. Both phases share one server: a warm
// frame store changes fetch latency, not bytes on the wire, and each
// loadgen run dials fresh sessions so the on-phase players start with no
// held references — the comparison is not tilted either way.
func runDeltaSavings(quick bool) (*deltaSavings, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	srv := server.New(env)
	go srv.Serve(ln)

	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	const players = 8
	run := func(deltaOn bool) (loadgen.Report, error) {
		srv.SetDeltaEnabled(deltaOn)
		return loadgen.Run(loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: players, Duration: dur, Seed: 1,
			Pattern: loadgen.PatternWalk, Server: srv,
		})
	}
	off, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("delta-savings off: %w", err)
	}
	on, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("delta-savings on: %w", err)
	}
	row := &deltaSavings{
		Pattern:          loadgen.PatternWalk,
		Players:          players,
		BytesPerFrameOff: off.BytesPerFrame,
		BytesPerFrameOn:  on.BytesPerFrame,
		DeltaFrames:      on.DeltaFrames,
	}
	if off.BytesPerFrame > 0 {
		row.ReductionFraction = 1 - on.BytesPerFrame/off.BytesPerFrame
	}
	fmt.Printf("[delta-savings: %s %dp  off %.0f B/frame  on %.0f B/frame  -%0.1f%%  (%d delta frames)]\n",
		row.Pattern, row.Players, row.BytesPerFrameOff, row.BytesPerFrameOn,
		100*row.ReductionFraction, row.DeltaFrames)
	return row, nil
}
