// Benchtab regenerates the paper's tables and figures from the
// reimplemented system and prints measured values alongside the published
// ones.
//
// Usage:
//
//	benchtab -exp table1,fig11          # specific experiments
//	benchtab -exp all                   # everything (minutes)
//	benchtab -exp all -quick            # reduced sampling (tens of seconds)
//	benchtab -parallel 4                # cap experiment fan-out at 4 workers
//	benchtab -bench-json BENCH.json     # record wall-clock + micro-bench JSON
//	benchtab -exp none -bench-json B.json  # benchmarks only, no experiments
//
// Experiments: table1 fig1 fig2 fig3 fig5 fig6 table3 fig7 fig8 table5
// table6 table7 fig11 table8 table9 fig12 table10 ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"coterie/internal/eval"
	"coterie/internal/plot"
)

// writeChart renders a chart into the plot directory.
func writeChart(dir, name string, c plot.Chart) error {
	svg, err := c.SVG()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(svg), 0o644)
}

var order = []string{
	"table1", "fig1", "fig2", "fig3", "fig5", "fig6", "table3", "fig7",
	"fig8", "table5", "table6", "table7", "fig11", "table8", "table9",
	"fig12", "table10", "ablations",
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced sampling for a fast pass")
	seed := flag.Int64("seed", 1, "experiment seed")
	parallel := flag.Int("parallel", 0, "workers per experiment (0 = GOMAXPROCS); results are identical for any value")
	benchJSON := flag.String("bench-json", "", "write per-experiment wall-clock and micro-benchmark numbers to this JSON file")
	plotDir := flag.String("plots", "", "also write SVG figures into this directory (fig5, fig7, fig11, fig12)")
	flag.Parse()

	opts := eval.DefaultOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.Parallel = *parallel
	lab := eval.NewLab(opts)

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range order {
			want[e] = true
		}
	case "none", "":
		// Benchmarks only: -exp none -bench-json FILE records the micro
		// and server-throughput benches without rerunning experiments.
	default:
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	if *plotDir != "" {
		if err := os.MkdirAll(*plotDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "plots: %v\n", err)
			os.Exit(1)
		}
	}

	var timings []expTiming
	for _, e := range order {
		if !want[e] {
			continue
		}
		delete(want, e)
		start := time.Now()
		if err := run(lab, e, *plotDir); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		timings = append(timings, expTiming{Name: e, Seconds: elapsed.Seconds()})
		fmt.Printf("[%s completed in %v]\n\n", e, elapsed.Round(time.Millisecond))
	}
	for e := range want {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
		os.Exit(2)
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *parallel, *quick, timings); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[bench report written to %s]\n", *benchJSON)
	}
}

func run(lab *eval.Lab, exp, plotDir string) error {
	w := os.Stdout
	switch exp {
	case "table1":
		rows, err := lab.Table1()
		if err != nil {
			return err
		}
		eval.PrintTable1(w, rows)
	case "fig1":
		rows, err := lab.Fig1()
		if err != nil {
			return err
		}
		eval.PrintFig1(w, rows)
	case "fig2":
		rows, err := lab.Fig2()
		if err != nil {
			return err
		}
		eval.PrintFig2(w, rows)
	case "fig3":
		r, err := lab.Fig3()
		if err != nil {
			return err
		}
		eval.PrintFig3(w, r)
	case "fig5":
		pts, err := lab.Fig5()
		if err != nil {
			return err
		}
		eval.PrintFig5(w, pts)
		if plotDir != "" {
			c := plot.Chart{Title: "Fig 5: far-BE SSIM vs cutoff radius", XLabel: "cutoff radius (m)", YLabel: "SSIM", YMin: 0, YMax: 1.02}
			for i := 0; i < 4; i++ {
				s := plot.Series{Name: fmt.Sprintf("location %d", i+1)}
				for _, p := range pts {
					s.X = append(s.X, p.Radius)
					s.Y = append(s.Y, p.SSIM[i])
				}
				c.Series = append(c.Series, s)
			}
			if err := writeChart(plotDir, "fig5.svg", c); err != nil {
				return err
			}
		}
	case "fig6":
		rows, err := lab.Fig6()
		if err != nil {
			return err
		}
		eval.PrintFig6(w, rows)
	case "table3":
		rows, err := lab.Table3()
		if err != nil {
			return err
		}
		eval.PrintTable3(w, rows)
	case "fig7":
		rows, err := lab.Fig7()
		if err != nil {
			return err
		}
		eval.PrintFig7(w, rows)
		if plotDir != "" {
			c := plot.Chart{
				Title:  "Fig 7: cutoff radius quantiles per game",
				XLabel: "game index (catalog order)", YLabel: "radius (m)",
			}
			p10 := plot.Series{Name: "p10"}
			p50 := plot.Series{Name: "p50"}
			p90 := plot.Series{Name: "p90"}
			for i, r := range rows {
				p10.X = append(p10.X, float64(i))
				p10.Y = append(p10.Y, r.P10)
				p50.X = append(p50.X, float64(i))
				p50.Y = append(p50.Y, r.P50)
				p90.X = append(p90.X, float64(i))
				p90.Y = append(p90.Y, r.P90)
			}
			c.Series = []plot.Series{p10, p50, p90}
			if err := writeChart(plotDir, "fig7.svg", c); err != nil {
				return err
			}
		}
	case "fig8":
		r, err := lab.Fig8()
		if err != nil {
			return err
		}
		eval.PrintFig8(w, r)
	case "table5":
		rows, err := lab.Table5("viking")
		if err != nil {
			return err
		}
		eval.PrintTable5(w, rows)
	case "table6":
		rows, err := lab.Table6()
		if err != nil {
			return err
		}
		eval.PrintTable6(w, rows)
	case "table7":
		rows, err := lab.Table7()
		if err != nil {
			return err
		}
		eval.PrintTable7(w, rows)
	case "fig11":
		rows, err := lab.Fig11()
		if err != nil {
			return err
		}
		eval.PrintFig11(w, rows)
		if plotDir != "" {
			byGame := map[string]*plot.Chart{}
			for _, r := range rows {
				c, ok := byGame[r.Game]
				if !ok {
					c = &plot.Chart{
						Title:  "Fig 11: FPS vs players (" + r.Game + ")",
						XLabel: "players", YLabel: "FPS", YMin: 0, YMax: 65,
					}
					byGame[r.Game] = c
				}
				c.Series = append(c.Series, plot.Series{
					Name: r.System.String(),
					X:    []float64{1, 2, 3, 4},
					Y:    r.FPS[:],
				})
			}
			for game, c := range byGame {
				if err := writeChart(plotDir, "fig11_"+game+".svg", *c); err != nil {
					return err
				}
			}
		}
	case "table8":
		rows, err := lab.Table8()
		if err != nil {
			return err
		}
		eval.PrintTable8(w, rows)
	case "table9":
		rows, err := lab.Table9()
		if err != nil {
			return err
		}
		eval.PrintTable9(w, rows)
	case "fig12":
		rows, err := lab.Fig12()
		if err != nil {
			return err
		}
		eval.PrintFig12(w, rows)
		if plotDir != "" {
			for _, r := range rows {
				if r.Players != 4 || len(r.Series) == 0 {
					continue
				}
				c := plot.Chart{
					Title:  fmt.Sprintf("Fig 12: Coterie resources over time (%s, %dP)", r.Game, r.Players),
					XLabel: "time (s)", YLabel: "% / W / C", YMin: 0, YMax: 100,
				}
				cpu := plot.Series{Name: "CPU %"}
				gpu := plot.Series{Name: "GPU %"}
				temp := plot.Series{Name: "SoC temp (C)"}
				pw := plot.Series{Name: "power (W x10)"}
				// Decimate long runs to ~180 points per curve.
				stride := len(r.Series)/180 + 1
				for i := 0; i < len(r.Series); i += stride {
					p := r.Series[i]
					x := float64(p.Sec)
					cpu.X = append(cpu.X, x)
					cpu.Y = append(cpu.Y, p.CPUPct)
					gpu.X = append(gpu.X, x)
					gpu.Y = append(gpu.Y, p.GPUPct)
					temp.X = append(temp.X, x)
					temp.Y = append(temp.Y, p.TempC)
					pw.X = append(pw.X, x)
					pw.Y = append(pw.Y, p.PowerW*10)
				}
				c.Series = []plot.Series{cpu, gpu, temp, pw}
				if err := writeChart(plotDir, "fig12_"+r.Game+".svg", c); err != nil {
					return err
				}
			}
		}
	case "table10":
		r, err := lab.Table10()
		if err != nil {
			return err
		}
		eval.PrintTable10(w, r)
	case "ablations":
		ra, err := lab.ReplacementAblation("viking", 24)
		if err != nil {
			return err
		}
		eval.PrintReplacementAblation(w, ra)
		ca, err := lab.CutoffAblation("viking")
		if err != nil {
			return err
		}
		eval.PrintCutoffAblation(w, ca)
		la, err := lab.LookupAblation("viking")
		if err != nil {
			return err
		}
		eval.PrintLookupAblation(w, la)
		pa, err := lab.PrefetchAblation("viking")
		if err != nil {
			return err
		}
		eval.PrintPrefetchAblation(w, pa)
		oa, err := lab.OverhearAblation("viking")
		if err != nil {
			return err
		}
		eval.PrintOverhearAblation(w, oa)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
