package main

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/loadgen"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/server"
)

// obsOverhead is the observability A/B: the same walk load against an
// uninstrumented server and against one carrying the full PR 9 pipeline —
// registry instruments, trace ring, and the SLO burn-rate monitor
// observing every served frame. The overhead fraction is the throughput
// cost of leaving observability on in production; the design target is
// under 5%.
type obsOverhead struct {
	Pattern          string  `json:"pattern"`
	Players          int     `json:"players"`
	FramesPerSecOff  float64 `json:"frames_per_sec_off"`
	FramesPerSecOn   float64 `json:"frames_per_sec_on"`
	OverheadFraction float64 `json:"overhead_fraction"`
	// SLOFrames confirms the on-arm actually observed frames (the A/B is
	// meaningless if the monitor silently stayed cold).
	SLOFrames int64 `json:"slo_frames"`
}

// runObsOverhead measures the A/B on two servers sharing one prepared
// environment, each warmed over the walk ground before its measured run
// so both arms serve from an equally warm store.
func runObsOverhead(quick bool) (*obsOverhead, error) {
	spec, err := games.ByName("pool")
	if err != nil {
		return nil, err
	}
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg:   render.Config{W: 128, H: 64},
		SizeSamples: 2,
	})
	if err != nil {
		return nil, err
	}
	dur := 2 * time.Second
	if quick {
		dur = 500 * time.Millisecond
	}
	const players = 8

	run := func(instrument bool) (loadgen.Report, int64, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Report{}, 0, err
		}
		defer ln.Close()
		srv := server.New(env)
		var reg *obs.Registry
		if instrument {
			reg = obs.NewRegistry()
			srv.Instrument(reg)
			slo := obs.NewSLO(obs.SLOConfig{
				Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			reg.SetSLO(slo)
			srv.SetSLO(slo)
		}
		go srv.Serve(ln)
		cfg := loadgen.Config{
			Addr: ln.Addr().String(), Game: "pool",
			Players: players, Duration: dur, Seed: 1,
			Pattern: loadgen.PatternWalk, Server: srv,
		}
		if _, err := loadgen.Warm(cfg, 64); err != nil {
			return loadgen.Report{}, 0, err
		}
		rep, err := loadgen.Run(cfg)
		var sloFrames int64
		if reg != nil {
			sloFrames = reg.Snapshot().Counters["slo.frames"]
		}
		return rep, sloFrames, err
	}

	off, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("obs-overhead off: %w", err)
	}
	on, sloFrames, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("obs-overhead on: %w", err)
	}
	if sloFrames == 0 {
		return nil, fmt.Errorf("obs-overhead: SLO monitor observed no frames")
	}
	row := &obsOverhead{
		Pattern:         loadgen.PatternWalk,
		Players:         players,
		FramesPerSecOff: off.FramesPerSec,
		FramesPerSecOn:  on.FramesPerSec,
		SLOFrames:       sloFrames,
	}
	if off.FramesPerSec > 0 {
		row.OverheadFraction = 1 - on.FramesPerSec/off.FramesPerSec
	}
	fmt.Printf("[obs-overhead: %s %dp  off %.0f frames/sec  on %.0f frames/sec  %+.1f%%  (%d slo frames)]\n",
		row.Pattern, row.Players, row.FramesPerSecOff, row.FramesPerSecOn,
		100*row.OverheadFraction, row.SLOFrames)
	return row, nil
}
