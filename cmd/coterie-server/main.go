// Coterie-server hosts the far-BE frame server for one game over real
// TCP: it runs the offline preprocessing (adaptive cutoff scheme and cache
// distance thresholds), then serves pre-rendered, pre-encoded panoramic
// far-BE frames and FI synchronisation to clients (§5.1).
//
// Usage:
//
//	coterie-server -game viking -addr :7368
//	coterie-client -game viking -addr localhost:7368
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/render"
	"coterie/internal/server"
)

func main() {
	game := flag.String("game", "viking", "game to host (see games catalog)")
	addr := flag.String("addr", ":7368", "listen address")
	width := flag.Int("width", 256, "panorama width in pixels")
	height := flag.Int("height", 128, "panorama height in pixels")
	prerender := flag.Float64("prerender", 0, "warm up frames within this radius (m) of the spawn before serving")
	stride := flag.Int("prerender-stride", 16, "grid stride for prerendering (1 = every point)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown wait for in-flight sessions")
	flag.Parse()

	spec, err := games.ByName(*game)
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	log.Printf("preparing %s (offline preprocessing: adaptive cutoff + thresholds)...", spec.FullName)
	start := time.Now()
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg: render.Config{W: *width, H: *height},
	})
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	log.Printf("ready in %v: %d leaf regions, far-BE frames ~%d KB",
		time.Since(start).Round(time.Millisecond),
		env.Map.Stats.LeafCount, env.Sizer.FarBE/1024)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	srv := server.New(env)
	srv.DrainTimeout = *drain

	if *prerender > 0 {
		region := geom.Rect{
			MinX: env.Game.Spawn.X - *prerender, MinZ: env.Game.Spawn.Z - *prerender,
			MaxX: env.Game.Spawn.X + *prerender, MaxZ: env.Game.Spawn.Z + *prerender,
		}
		t0 := time.Now()
		stats, err := srv.PrerenderRegion(region, *stride, 0)
		if err != nil {
			log.Fatalf("coterie-server: prerender: %v", err)
		}
		log.Printf("prerendered %d frames (%.1f MB) over %d points in %v",
			stats.Rendered, float64(stats.Bytes)/1e6, stats.Points,
			time.Since(t0).Round(time.Millisecond))
	}

	// FI sync runs over UDP on the same port, like the paper's PUN setup
	// (frames over TCP, FI over UDP).
	pc, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("coterie-server: udp: %v", err)
	}
	go func() {
		if err := srv.ServeFIUDP(pc); err != nil {
			log.Printf("coterie-server: fi sync: %v", err)
		}
	}()

	// SIGINT/SIGTERM stop accepting and drain in-flight sessions.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	context.AfterFunc(ctx, func() {
		log.Printf("shutting down: draining sessions (up to %v)...", *drain)
		pc.Close()
	})

	log.Printf("serving %s on %s (frames: tcp, FI sync: udp)", spec.Name, ln.Addr())
	err = srv.ServeContext(ctx, ln)
	served, rendered := srv.Stats()
	log.Printf("served %d frames (%d rendered)", served, rendered)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("coterie-server: %v", err)
	}
}
