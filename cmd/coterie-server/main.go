// Coterie-server hosts the far-BE frame server for one game over real
// TCP: it runs the offline preprocessing (adaptive cutoff scheme and cache
// distance thresholds), then serves pre-rendered, pre-encoded panoramic
// far-BE frames and FI synchronisation to clients (§5.1).
//
// Usage:
//
//	coterie-server -game viking -addr :7368
//	coterie-client -game viking -addr localhost:7368
//
// With -admin, an HTTP listener exposes /metrics (JSON registry
// snapshot), /trace (recent frame spans), /debug/vars (expvar) and
// /debug/pprof for live inspection:
//
//	coterie-server -game viking -addr :7368 -admin :6060
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coterie/internal/cluster"
	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/obs"
	"coterie/internal/render"
	"coterie/internal/server"
)

func main() {
	game := flag.String("game", "viking", "game to host (see games catalog)")
	addr := flag.String("addr", ":7368", "listen address")
	admin := flag.String("admin", "", "admin HTTP listen address for /metrics, /trace, expvar and pprof (empty = disabled)")
	width := flag.Int("width", 256, "panorama width in pixels")
	height := flag.Int("height", 128, "panorama height in pixels")
	storeBudget := flag.Int64("store-budget", 0, "frame store byte budget with LRU eviction (0 = unbounded)")
	renderWorkers := flag.Int("render-workers", 0, "tile-parallel render workers per frame (0 = GOMAXPROCS)")
	sched := flag.Bool("sched", true, "EDF deadline scheduling and admission control on the render path")
	degrade := flag.Bool("degrade", true, "quality-degrade ladder for deadline-pressed requests (stale/reproject/low-res)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent renders before queuing (0 = one per schedulable core)")
	prerender := flag.Float64("prerender", 0, "warm up frames within this radius (m) of the spawn before serving")
	stride := flag.Int("prerender-stride", 16, "grid stride for prerendering (1 = every point)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown wait for in-flight sessions")
	clusterList := flag.String("cluster", "", "comma-separated node addresses forming a static cluster; grid-point ownership is rendezvous-hashed across them (empty = single node)")
	nodeID := flag.Int("node-id", 0, "this node's index into the -cluster address list")
	peerHealth := flag.Duration("peer-health-interval", cluster.DefaultHealthInterval, "cluster peer health-probe period")
	peerFetchTO := flag.Duration("peer-fetch-timeout", cluster.DefaultFetchTimeout, "cluster peer frame-fetch timeout")
	clusterAdmin := flag.String("cluster-admin", "", "comma-separated admin addresses of every cluster node (same order as -cluster); enables the /cluster fleet view on the admin endpoint")
	push := flag.Bool("push", false, "push predicted frames unsolicited over UDP to subscribed clients")
	pushRate := flag.Int("push-rate", 0, "per-session push token-bucket rate in frames/sec (0 = default)")
	fecK := flag.Int("fec-k", 0, "XOR-parity FEC group size on the datagram frame path (0 = default)")
	sloObjective := flag.Float64("slo-objective", obs.DefaultSLOObjective, "SLO: fraction of frames that must be served within the frame budget at full quality")
	sloWindow := flag.Duration("slo-window", time.Minute, "SLO: short burn-rate window (the long window is 5x this)")
	flag.Parse()

	spec, err := games.ByName(*game)
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	log.Printf("preparing %s (offline preprocessing: adaptive cutoff + thresholds)...", spec.FullName)
	start := time.Now()
	env, err := core.PrepareEnv(spec, core.EnvOptions{
		RenderCfg: render.Config{W: *width, H: *height, Parallel: *renderWorkers},
	})
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	log.Printf("ready in %v: %d leaf regions, far-BE frames ~%d KB",
		time.Since(start).Round(time.Millisecond),
		env.Map.Stats.LeafCount, env.Sizer.FarBE/1024)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("coterie-server: %v", err)
	}
	srv := server.New(env)
	srv.DrainTimeout = *drain
	srv.SetSchedEnabled(*sched)
	srv.SetDegradeEnabled(*degrade)
	srv.SetPushEnabled(*push)
	srv.SetPushRate(*pushRate)
	srv.SetFECK(*fecK)
	if *maxInflight > 0 {
		srv.SetMaxInflight(*maxInflight)
	}
	if *storeBudget > 0 {
		srv.SetStoreBudget(*storeBudget)
		log.Printf("frame store bounded at %.1f MB (LRU eviction)", float64(*storeBudget)/1e6)
	}

	// The metrics registry always exists (the instruments are cheap); the
	// admin listener is what -admin opts into.
	reg := obs.NewRegistry()
	reg.PublishExpvar("coterie")
	srv.Instrument(reg)

	// SLO burn-rate monitor: every served frame counts against the error
	// budget (late, degraded or failover frames are budget spend).
	slo := obs.NewSLO(obs.SLOConfig{
		Objective:   *sloObjective,
		ShortWindow: *sloWindow,
		LongWindow:  5 * *sloWindow,
	})
	reg.SetSLO(slo)
	srv.SetSLO(slo)

	if *clusterList != "" {
		var nodes []string
		for _, a := range strings.Split(*clusterList, ",") {
			if a = strings.TrimSpace(a); a != "" {
				nodes = append(nodes, a)
			}
		}
		if *nodeID < 0 || *nodeID >= len(nodes) {
			log.Fatalf("coterie-server: -node-id %d out of range for %d-node cluster", *nodeID, len(nodes))
		}
		cl, err := cluster.New(cluster.Config{
			Self:           nodes[*nodeID],
			Nodes:          nodes,
			Game:           spec.Name,
			HealthInterval: *peerHealth,
			FetchTimeout:   *peerFetchTO,
		})
		if err != nil {
			log.Fatalf("coterie-server: %v", err)
		}
		cl.Instrument(reg)
		srv.SetCluster(cl)
		cl.Start()
		defer cl.Close()
		log.Printf("cluster node %d/%d (%s): ownership rendezvous-hashed across %v",
			*nodeID, cl.Size(), cl.Self(), cl.Nodes())
	}

	var adminSrv *http.Server
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("coterie-server: admin: %v", err)
		}
		mux := obs.AdminMux(reg)
		// /cluster merges the whole fleet's /metrics, /slo and /qoe into
		// one view. -cluster-admin names every node's admin address; a
		// single node falls back to scraping only itself.
		admins := []string{*admin}
		if *clusterAdmin != "" {
			admins = admins[:0]
			for _, a := range strings.Split(*clusterAdmin, ",") {
				if a = strings.TrimSpace(a); a != "" {
					admins = append(admins, a)
				}
			}
		}
		self := *admin
		if *clusterAdmin != "" && *nodeID >= 0 && *nodeID < len(admins) {
			self = admins[*nodeID]
		}
		mux.Handle("/cluster", cluster.FleetHandler(cluster.FleetConfig{Self: self, Admins: admins}))
		adminSrv = &http.Server{Handler: mux}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Warn("admin listener failed", "err", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /trace, /slo, /cluster, /debug/vars, /debug/pprof)", aln.Addr())
	}

	if *prerender > 0 {
		region := geom.Rect{
			MinX: env.Game.Spawn.X - *prerender, MinZ: env.Game.Spawn.Z - *prerender,
			MaxX: env.Game.Spawn.X + *prerender, MaxZ: env.Game.Spawn.Z + *prerender,
		}
		t0 := time.Now()
		stats, err := srv.PrerenderRegion(region, *stride, 0)
		if err != nil {
			log.Fatalf("coterie-server: prerender: %v", err)
		}
		log.Printf("prerendered %d frames (%.1f MB) over %d points in %v",
			stats.Rendered, float64(stats.Bytes)/1e6, stats.Points,
			time.Since(t0).Round(time.Millisecond))
	}

	// FI sync runs over UDP on the same port, like the paper's PUN setup
	// (frames over TCP, FI over UDP).
	pc, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("coterie-server: udp: %v", err)
	}
	go func() {
		if err := srv.ServeFIUDP(pc); err != nil {
			slog.Warn("fi sync listener failed", "err", err)
		}
	}()

	// SIGINT/SIGTERM stop accepting and drain in-flight sessions. Close
	// failures here are logged, not swallowed: a failed close can leak the
	// port past the process's advertised shutdown.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	context.AfterFunc(ctx, func() {
		slog.Info("shutting down: draining sessions", "timeout", *drain)
		if err := pc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			slog.Warn("udp listener close failed", "err", err)
		}
		if adminSrv != nil {
			if err := adminSrv.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				slog.Warn("admin listener close failed", "err", err)
			}
		}
	})

	log.Printf("serving %s on %s (frames: tcp, FI sync: udp)", spec.Name, ln.Addr())
	err = srv.ServeContext(ctx, ln)
	served, rendered := srv.Stats()
	log.Printf("served %d frames (%d rendered)", served, rendered)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("coterie-server: %v", err)
	}
}
