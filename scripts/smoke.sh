#!/usr/bin/env bash
# Smoke test for the live client/server path: build both binaries, host a
# small game on a random localhost port, replay a 2-second movement trace
# over real TCP/UDP, and check the client prints a session report. This is
# the out-of-process complement to the in-process loopback e2e test in
# internal/server (which compares the live runtime against the simulator).
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT INT TERM

echo "smoke: building binaries..."
go build -o "$bin/coterie-server" ./cmd/coterie-server
go build -o "$bin/coterie-client" ./cmd/coterie-client

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"

# Small panoramas keep the offline preprocessing and per-frame renders
# fast; the protocol and pipeline are the same at any resolution.
"$bin/coterie-server" -game pool -addr "$addr" -width 64 -height 32 \
    -drain 2s >"$bin/server.log" 2>&1 &
server_pid=$!

echo "smoke: waiting for server on $addr..."
for _ in $(seq 1 240); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited during startup" >&2
        cat "$bin/server.log" >&2
        exit 1
    fi
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.5
done

echo "smoke: running 2-second live session..."
"$bin/coterie-client" -game pool -addr "$addr" -seconds 2 -speed 2 \
    -width 64 -height 32 | tee "$bin/client.log"

grep -q "^pipeline: " "$bin/client.log" || {
    echo "smoke: client report missing" >&2
    cat "$bin/server.log" >&2
    exit 1
}

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=
echo "smoke: OK"
