#!/usr/bin/env bash
# Smoke test for the live client/server path: build both binaries, host a
# small game on a random localhost port, replay a 2-second movement trace
# over real TCP/UDP, and check the client prints a session report. While
# the session runs, the server's admin endpoint is scraped to assert the
# observability pipeline reports real traffic (non-zero frames served),
# and the client's admin endpoint is scraped for /qoe to assert the QoE
# monitor publishes a sane window FPS and missed-vsync ratio mid-session;
# the client's end-of-session metrics snapshot must show cache hits. This
# is the out-of-process complement to the in-process loopback e2e test in
# internal/server (which compares the live runtime against the simulator).
# A second session runs the datagram frame path (-udp-frames -push) and
# must consume at least one server-pushed frame with zero CRC-corrupt
# drops. After the session, the multi-player load harness (cmd/loadgen) runs
# against the same server and must report non-zero throughput, a sane p99
# fetch latency, and zero request errors. The 2-process cluster case then
# scrapes /cluster and /slo mid-session: the fleet view must show both
# nodes live with sane burn rates, and the loadgen report must embed the
# fleet section it scraped itself.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
server_pid=
client_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT INT TERM

# http_get HOST PORT PATH: minimal HTTP/1.0 GET over bash's /dev/tcp so
# the smoke test needs no curl/wget on the host.
http_get() {
    local out
    if ! exec 3<>"/dev/tcp/$1/$2" 2>/dev/null; then
        return 1
    fi
    printf 'GET %s HTTP/1.0\r\nHost: %s\r\n\r\n' "$3" "$1" >&3
    out=$(cat <&3)
    exec 3>&- 3<&-
    printf '%s' "$out"
}

echo "smoke: building binaries..."
go build -o "$bin/coterie-server" ./cmd/coterie-server
go build -o "$bin/coterie-client" ./cmd/coterie-client
go build -o "$bin/loadgen" ./cmd/loadgen

port=$((20000 + RANDOM % 20000))
admin_port=$((port + 1))
client_admin_port=$((port + 2))
addr="127.0.0.1:$port"
admin_addr="127.0.0.1:$admin_port"
client_admin_addr="127.0.0.1:$client_admin_port"

# Small panoramas keep the offline preprocessing and per-frame renders
# fast; the protocol and pipeline are the same at any resolution.
"$bin/coterie-server" -game pool -addr "$addr" -width 64 -height 32 \
    -admin "$admin_addr" -drain 2s -push >"$bin/server.log" 2>&1 &
server_pid=$!

echo "smoke: waiting for server on $addr..."
for _ in $(seq 1 240); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited during startup" >&2
        cat "$bin/server.log" >&2
        exit 1
    fi
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.5
done

echo "smoke: running 2-second live session..."
"$bin/coterie-client" -game pool -addr "$addr" -seconds 2 -speed 2 \
    -width 64 -height 32 -metrics-json "$bin/metrics.json" \
    -admin "$client_admin_addr" \
    >"$bin/client.log" 2>&1 &
client_pid=$!

# Scrape both admin endpoints while the session is live: the server's
# /metrics must show real traffic (the prefetch path pushes
# server.frames_served above zero well before the session ends), and the
# client's /qoe must publish a windowed QoE summary once at least two
# frames have displayed.
echo "smoke: scraping $admin_addr/metrics and $client_admin_addr/qoe mid-session..."
served_ok=
delta_ok=
qoe_ok=
while kill -0 "$client_pid" 2>/dev/null; do
    if http_get 127.0.0.1 "$admin_port" /metrics >"$bin/metrics.scrape" 2>/dev/null; then
        if [ -z "$served_ok" ] &&
            grep -Eq '"server\.frames_served": *[1-9]' "$bin/metrics.scrape"; then
            served_ok=1
        fi
        if [ -z "$delta_ok" ] &&
            grep -Eq '"server\.delta_frames": *[1-9]' "$bin/metrics.scrape"; then
            delta_ok=1
        fi
    fi
    if [ -z "$qoe_ok" ] &&
        http_get 127.0.0.1 "$client_admin_port" /qoe >"$bin/qoe.scrape" 2>/dev/null &&
        grep -Eq '"spans": *([2-9]|[0-9]{2,})' "$bin/qoe.scrape"; then
        qoe_ok=1
    fi
    if [ -n "$served_ok" ] && [ -n "$delta_ok" ] && [ -n "$qoe_ok" ]; then
        break
    fi
    sleep 0.2
done
if [ -z "$served_ok" ] || [ -z "$delta_ok" ]; then
    # The session may have raced past the scrape loop; accept a post-hoc
    # scrape as long as the counters are non-zero (the server keeps them).
    http_get 127.0.0.1 "$admin_port" /metrics >"$bin/metrics.scrape" || true
    grep -Eq '"server\.frames_served": *[1-9]' "$bin/metrics.scrape" || {
        echo "smoke: /metrics never reported frames served" >&2
        cat "$bin/metrics.scrape" >&2
        cat "$bin/server.log" >&2
        exit 1
    }
    # A walking player re-requests nearby grid points, so the session must
    # have produced at least one delta-coded reply.
    grep -Eq '"server\.delta_frames": *[1-9]' "$bin/metrics.scrape" || {
        echo "smoke: /metrics never reported a delta-coded frame" >&2
        cat "$bin/metrics.scrape" >&2
        cat "$bin/server.log" >&2
        exit 1
    }
fi

wait "$client_pid"
client_pid=
cat "$bin/client.log"

# QoE fields must be present and sane. Prefer the mid-session /qoe scrape;
# a session fast enough to race past the scrape loop falls back to the qoe
# section of the end-of-session metrics snapshot (same ComputeQoE path).
qoe_src="$bin/qoe.scrape"
if [ -z "$qoe_ok" ]; then
    echo "smoke: /qoe scrape raced past the session; checking metrics.json qoe section"
    qoe_src="$bin/metrics.json"
fi
awk '
    /"window_fps":/         { v = $2; gsub(/[",]/, "", v); fps = v }
    /"missed_vsync_ratio":/ { v = $2; gsub(/[",]/, "", v); missed = v }
    END {
        if (fps == "" || missed == "") { print "smoke: qoe fields missing"; exit 1 }
        if (fps + 0 <= 0 || fps + 0 > 1000) { print "smoke: window_fps insane: " fps; exit 1 }
        if (missed + 0 < 0 || missed + 0 > 1) { print "smoke: missed_vsync_ratio insane: " missed; exit 1 }
    }' "$qoe_src" || {
    echo "smoke: QoE snapshot failed sanity check ($qoe_src)" >&2
    cat "$qoe_src" >&2
    exit 1
}

grep -q "^pipeline: " "$bin/client.log" || {
    echo "smoke: client report missing" >&2
    cat "$bin/server.log" >&2
    exit 1
}

grep -Eq '"cache\.hits": *[1-9]' "$bin/metrics.json" || {
    echo "smoke: client metrics snapshot shows no cache hits" >&2
    cat "$bin/metrics.json" >&2
    exit 1
}

# Datagram frame path: the same server (started with -push) serves a
# second session over UDP. The client must consume at least one pushed
# frame — either served out of the channel's retained store
# (client.udp.push_serves) or displayed by the pipeline
# (cache.pushed_hits) — and must drop zero frames to CRC corruption.
echo "smoke: running 2-second UDP session with push..."
"$bin/coterie-client" -game pool -addr "$addr" -seconds 2 -speed 2 \
    -width 64 -height 32 -udp-frames -push \
    -metrics-json "$bin/metrics-udp.json" \
    >"$bin/client-udp.log" 2>&1 || {
    echo "smoke: UDP client session failed" >&2
    cat "$bin/client-udp.log" "$bin/server.log" >&2
    exit 1
}
grep -q "^pipeline: " "$bin/client-udp.log" || {
    echo "smoke: UDP client report missing" >&2
    cat "$bin/client-udp.log" "$bin/server.log" >&2
    exit 1
}
grep -Eq '"client\.udp\.frames_delivered": *[1-9]' "$bin/metrics-udp.json" || {
    echo "smoke: UDP session delivered no datagram frames" >&2
    cat "$bin/metrics-udp.json" >&2
    exit 1
}
grep -Eq '"(client\.udp\.push_serves|cache\.pushed_hits)": *[1-9]' "$bin/metrics-udp.json" || {
    echo "smoke: UDP session consumed no pushed frames" >&2
    cat "$bin/metrics-udp.json" >&2
    exit 1
}
if grep -Eq '"client\.udp\.corrupt": *[1-9]' "$bin/metrics-udp.json"; then
    echo "smoke: UDP session dropped frames to CRC corruption" >&2
    cat "$bin/metrics-udp.json" >&2
    exit 1
fi

# Multi-player load against the same live server: 4 synthetic players for
# 2 seconds must sustain non-zero throughput with a sane p99 (the walkers
# mostly hit warm store points, so seconds-long p99s mean the server hot
# path is broken, not just slow hardware).
echo "smoke: running loadgen against the live server..."
"$bin/loadgen" -addr "$addr" -game pool -players 4 -duration 2s -json \
    >"$bin/loadgen.json" 2>"$bin/loadgen.log" || {
    echo "smoke: loadgen failed" >&2
    cat "$bin/loadgen.log" >&2
    exit 1
}
awk '
    /"frames_per_sec":/ { v = $2; gsub(/[",]/, "", v); fps = v }
    /"p99_ms":/         { v = $2; gsub(/[",]/, "", v); p99 = v }
    /"errors":/         { v = $2; gsub(/[",]/, "", v); errs = v }
    END {
        if (fps == "" || p99 == "") { print "smoke: loadgen fields missing"; exit 1 }
        if (fps + 0 <= 0) { print "smoke: loadgen throughput zero"; exit 1 }
        if (p99 + 0 <= 0 || p99 + 0 > 5000) { print "smoke: loadgen p99 insane: " p99; exit 1 }
        if (errs + 0 != 0) { print "smoke: loadgen saw " errs " request errors"; exit 1 }
    }' "$bin/loadgen.json" || {
    echo "smoke: loadgen report failed sanity check" >&2
    cat "$bin/loadgen.json" >&2
    exit 1
}

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=

# --- 2-node cluster: peer fetch, then failover after killing one node ---
# Two server processes share grid-point ownership by rendezvous hashing.
# Players spread across both must trigger peer fetches (each node owns
# ~half the points its sessions request); after one node is killed, load
# against the survivor must finish with zero request errors — remote
# points fail over to local re-renders, visible as failover_frames.
echo "smoke: starting 2-node cluster..."
n0_port=$((port + 3)); n1_port=$((port + 4)); n0_admin=$((port + 5)); n1_admin=$((port + 6))
n0_addr="127.0.0.1:$n0_port"; n1_addr="127.0.0.1:$n1_port"
cluster="$n0_addr,$n1_addr"
cluster_admin="127.0.0.1:$n0_admin,127.0.0.1:$n1_admin"
"$bin/coterie-server" -game pool -addr "$n0_addr" -width 64 -height 32 \
    -cluster "$cluster" -node-id 0 -admin "127.0.0.1:$n0_admin" \
    -cluster-admin "$cluster_admin" -drain 2s \
    >"$bin/node0.log" 2>&1 &
node0_pid=$!
"$bin/coterie-server" -game pool -addr "$n1_addr" -width 64 -height 32 \
    -cluster "$cluster" -node-id 1 -admin "127.0.0.1:$n1_admin" \
    -cluster-admin "$cluster_admin" -drain 2s >"$bin/node1.log" 2>&1 &
node1_pid=$!
cleanup_cluster() {
    [ -n "${node0_pid:-}" ] && kill "$node0_pid" 2>/dev/null
    [ -n "${node1_pid:-}" ] && kill "$node1_pid" 2>/dev/null
    wait 2>/dev/null || true
}
trap 'cleanup_cluster; cleanup' EXIT INT TERM

for p in "$n0_port" "$n1_port"; do
    for _ in $(seq 1 240); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.5
    done
done

echo "smoke: loadgen across both cluster nodes..."
"$bin/loadgen" -addr "$cluster" -game pool -players 4 -duration 2s -json \
    -admin-addrs "$cluster_admin" \
    >"$bin/cluster.json" 2>"$bin/cluster.log" &
loadgen_pid=$!

# Mid-session fleet view: /cluster on node 0 must merge both nodes (live,
# not stale) and /slo must publish the error-budget snapshot with sane
# burn rates while the load is running.
fleet_ok=
slo_ok=
while kill -0 "$loadgen_pid" 2>/dev/null; do
    if [ -z "$fleet_ok" ] &&
        http_get 127.0.0.1 "$n0_admin" /cluster >"$bin/fleet.scrape" 2>/dev/null &&
        grep -Eq '"nodes_up": *2' "$bin/fleet.scrape" &&
        grep -q "127.0.0.1:$n1_admin" "$bin/fleet.scrape"; then
        fleet_ok=1
    fi
    if [ -z "$slo_ok" ] &&
        http_get 127.0.0.1 "$n0_admin" /slo >"$bin/slo.scrape" 2>/dev/null &&
        grep -Eq '"objective": *0\.99' "$bin/slo.scrape"; then
        slo_ok=1
    fi
    if [ -n "$fleet_ok" ] && [ -n "$slo_ok" ]; then
        break
    fi
    sleep 0.2
done
wait "$loadgen_pid" || {
    echo "smoke: cluster loadgen failed" >&2
    cat "$bin/cluster.log" "$bin/node0.log" "$bin/node1.log" >&2
    exit 1
}
# A 2-second load can race past the scrape loop; the fleet view is
# served on demand, so a post-hoc scrape carries the same counters.
if [ -z "$fleet_ok" ]; then
    http_get 127.0.0.1 "$n0_admin" /cluster >"$bin/fleet.scrape" || true
    grep -Eq '"nodes_up": *2' "$bin/fleet.scrape" &&
        grep -q "127.0.0.1:$n1_admin" "$bin/fleet.scrape" || {
        echo "smoke: /cluster never showed both nodes up" >&2
        cat "$bin/fleet.scrape" >&2
        exit 1
    }
fi
if [ -z "$slo_ok" ]; then
    http_get 127.0.0.1 "$n0_admin" /slo >"$bin/slo.scrape" || true
    grep -Eq '"objective": *0\.99' "$bin/slo.scrape" || {
        echo "smoke: /slo never published the SLO snapshot" >&2
        cat "$bin/slo.scrape" >&2
        exit 1
    }
fi
# Burn rates must be sane on both views: non-negative, and not the
# stratospheric values a broken window sum would produce.
awk '
    /"burn_rate_1m":/ { v = $2; gsub(/[",]/, "", v); b1 = v; seen = 1 }
    END {
        if (!seen) { print "smoke: /cluster has no fleet burn rate"; exit 1 }
        if (b1 + 0 < 0 || b1 + 0 > 1000) { print "smoke: fleet burn rate insane: " b1; exit 1 }
    }' "$bin/fleet.scrape" || {
    echo "smoke: fleet burn-rate sanity check failed" >&2
    cat "$bin/fleet.scrape" >&2
    exit 1
}
awk '
    /"burn_rate":/ { v = $2; gsub(/[",]/, "", v); if (v + 0 < 0 || v + 0 > 1000) bad = v }
    END { if (bad != "") { print "smoke: /slo burn rate insane: " bad; exit 1 } }
    ' "$bin/slo.scrape" || {
    echo "smoke: /slo burn-rate sanity check failed" >&2
    cat "$bin/slo.scrape" >&2
    exit 1
}
# The loadgen report carries the fleet view it scraped itself.
grep -Eq '"fleet":' "$bin/cluster.json" || {
    echo "smoke: loadgen report has no fleet section" >&2
    cat "$bin/cluster.json" >&2
    exit 1
}
awk '
    /"frames_per_sec":/ { v = $2; gsub(/[",]/, "", v); fps = v }
    /"errors":/         { v = $2; gsub(/[",]/, "", v); errs = v }
    END {
        if (fps + 0 <= 0) { print "smoke: cluster throughput zero"; exit 1 }
        if (errs + 0 != 0) { print "smoke: cluster run saw " errs " request errors"; exit 1 }
    }' "$bin/cluster.json" || {
    echo "smoke: cluster loadgen report failed sanity check" >&2
    cat "$bin/cluster.json" >&2
    exit 1
}
http_get 127.0.0.1 "$n0_admin" /metrics >"$bin/cluster.scrape" || true
grep -Eq '"cluster\.peer_fetches": *[1-9]' "$bin/cluster.scrape" || {
    echo "smoke: node 0 never peer-fetched a frame" >&2
    cat "$bin/cluster.scrape" >&2
    exit 1
}

echo "smoke: killing node 1, loadgen against the survivor..."
kill "$node1_pid"
wait "$node1_pid" 2>/dev/null || true
node1_pid=
"$bin/loadgen" -addr "$n0_addr" -game pool -players 4 -duration 2s -json \
    >"$bin/failover.json" 2>"$bin/failover.log" || {
    echo "smoke: failover loadgen failed" >&2
    cat "$bin/failover.log" "$bin/node0.log" >&2
    exit 1
}
awk '
    /"frames_per_sec":/    { v = $2; gsub(/[",]/, "", v); fps = v }
    /"errors":/            { v = $2; gsub(/[",]/, "", v); errs = v }
    /"failover_frames":/   { v = $2; gsub(/[",]/, "", v); fo = v }
    END {
        if (fps + 0 <= 0) { print "smoke: failover throughput zero"; exit 1 }
        if (errs + 0 != 0) { print "smoke: failover run saw " errs " request errors"; exit 1 }
        if (fo + 0 <= 0) { print "smoke: no failover re-renders counted"; exit 1 }
    }' "$bin/failover.json" || {
    echo "smoke: failover report failed sanity check" >&2
    cat "$bin/failover.json" >&2
    exit 1
}

kill "$node0_pid"
wait "$node0_pid" 2>/dev/null || true
node0_pid=
echo "smoke: OK"
