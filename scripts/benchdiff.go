// Benchdiff is the bench regression gate: it compares the micro-benchmark
// results of two benchtab JSON reports (BENCH_*.json) and fails when any
// benchmark regressed beyond a tolerance — slower by more than the ns/op
// threshold, or allocating more per op at all (allocation counts are
// deterministic, so any increase is a real regression).
//
//	go run ./scripts BENCH_1.json BENCH_2.json
//	go run ./scripts -tolerance 0.15 old.json new.json
//
// Experiment wall times are reported for context but never gate: they are
// too machine-dependent. Benchmarks present in only one report are listed
// but do not fail the gate (the set grows as the repo does).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// microResult mirrors the benchtab report's micro entry.
type microResult struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsRaw float64 `json:"allocs_per_op"`
	BytesRaw  float64 `json:"bytes_per_op"`
}

// deadlineResult mirrors one deadline_ab row of the benchtab report.
type deadlineResult struct {
	Players    int     `json:"players"`
	Sched      bool    `json:"sched"`
	P99Ms      float64 `json:"p99_ms"`
	Compliance float64 `json:"deadline_compliance"`
}

// udpResult mirrors one udp_vs_tcp row of the benchtab report.
type udpResult struct {
	Mode          string  `json:"mode"`
	LossPct       float64 `json:"loss_pct"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	PushHitRatio  float64 `json:"push_hit_ratio"`
	CorruptFrames int64   `json:"corrupt_frames"`
}

// report mirrors the slice of the benchtab JSON shape the gate needs.
type report struct {
	Generated   string `json:"generated"`
	Experiments []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	} `json:"experiments"`
	Micro      []microResult `json:"micro"`
	DeadlineAB *struct {
		DeadlineMs float64          `json:"deadline_ms"`
		Rows       []deadlineResult `json:"rows"`
	} `json:"deadline_ab"`
	UDPvsTCP *struct {
		Rows []udpResult `json:"rows"`
	} `json:"udp_vs_tcp"`
}

func main() {
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression (0.25 = 25% slower)")
	floorNs := flag.Float64("floor-ns", 50, "absolute ns/op regression below which the fractional gate does not fire (sub-10ns benchmarks are all jitter at 25%)")
	compTolerance := flag.Float64("compliance-tolerance", 0.05, "allowed absolute deadline-compliance drop per deadline_ab row")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.25] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	failed := diff(old, cur, *tolerance, *floorNs)
	if diffDeadlines(old, cur, *compTolerance) {
		failed = true
	}
	if diffUDP(old, cur) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// diffDeadlines gates the deadline_ab section: a row (player count ×
// scheduler arm) present in both reports must not lose deadline compliance
// beyond the tolerance. Rows in only one report are informational — the
// section appears starting with BENCH_4, and its fan-out can grow.
func diffDeadlines(old, cur *report, tolerance float64) (failed bool) {
	if cur.DeadlineAB == nil {
		if old.DeadlineAB != nil {
			fmt.Println("deadline_ab section dropped from new report")
		}
		return false
	}
	oldRows := map[string]deadlineResult{}
	if old.DeadlineAB != nil {
		for _, r := range old.DeadlineAB.Rows {
			oldRows[fmt.Sprintf("%dp/sched=%v", r.Players, r.Sched)] = r
		}
	}
	fmt.Printf("deadline_ab (budget %.1f ms, compliance tolerance %.0f pp):\n",
		cur.DeadlineAB.DeadlineMs, tolerance*100)
	for _, now := range cur.DeadlineAB.Rows {
		key := fmt.Sprintf("%dp/sched=%v", now.Players, now.Sched)
		was, ok := oldRows[key]
		if !ok {
			fmt.Printf("%-34s %12s %11.1f%% %8s %8s %8s\n", key, "-", 100*now.Compliance, "-", "-", "new")
			continue
		}
		verdict := "ok"
		if now.Compliance < was.Compliance-tolerance {
			verdict = "COMPLIANCE"
			failed = true
		}
		fmt.Printf("%-34s %11.1f%% %11.1f%% %+7.1fpp  p99 %6.2f ms %8s\n",
			key, 100*was.Compliance, 100*now.Compliance,
			100*(now.Compliance-was.Compliance), now.P99Ms, verdict)
	}
	if failed {
		fmt.Println("benchdiff: FAIL — deadline compliance regressed beyond tolerance")
	}
	return failed
}

// diffUDP gates the udp_vs_tcp section of the new report: the datagram
// path must never hand the pipeline a corrupt frame (the CRC gate is
// absolute — any corrupt delivery is a wire-layer bug, not a perf
// regression), and trajectory-driven push must actually land hits on the
// walk load (a push-hit ratio of zero means the predictor or the push
// pipeline silently broke). Old-report rows are shown for context; the
// section first appears in BENCH_7, so a missing old section is fine.
func diffUDP(old, cur *report) (failed bool) {
	if cur.UDPvsTCP == nil {
		if old.UDPvsTCP != nil {
			fmt.Println("udp_vs_tcp section dropped from new report")
		}
		return false
	}
	oldRows := map[string]udpResult{}
	if old.UDPvsTCP != nil {
		for _, r := range old.UDPvsTCP.Rows {
			oldRows[fmt.Sprintf("%s/loss=%.1f%%", r.Mode, r.LossPct)] = r
		}
	}
	fmt.Println("udp_vs_tcp (gates: zero corrupt frames; push-hit ratio > 0 on the lossless walk load):")
	anyPushHit := false
	for _, now := range cur.UDPvsTCP.Rows {
		key := fmt.Sprintf("%s/loss=%.1f%%", now.Mode, now.LossPct)
		verdict := "ok"
		if now.Mode == "udp" {
			if now.PushHitRatio > 0 {
				anyPushHit = true
			}
			if now.CorruptFrames != 0 {
				verdict = "CORRUPT"
				failed = true
			}
		}
		oldP50 := "-"
		if was, ok := oldRows[key]; ok {
			oldP50 = fmt.Sprintf("%.2f", was.P50Ms)
		}
		fmt.Printf("%-34s p50 %8s -> %6.2f ms  p99 %7.2f ms  push-hit %5.1f%% %8s\n",
			key, oldP50, now.P50Ms, now.P99Ms, 100*now.PushHitRatio, verdict)
	}
	if !anyPushHit {
		fmt.Println("udp_vs_tcp: PUSH-HIT — no UDP arm recorded a single push hit")
		failed = true
	}
	if failed {
		fmt.Println("benchdiff: FAIL — datagram frame path regressed (corrupt frames or dead push)")
	}
	return failed
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diff prints the comparison and reports whether any benchmark regressed.
// The fractional tolerance only fires once the regression also clears the
// absolute floor: a few ns on a single-digit-ns benchmark is measurement
// jitter, not a regression.
func diff(old, cur *report, tolerance, floorNs float64) (failed bool) {
	oldBy := make(map[string]microResult, len(old.Micro))
	for _, m := range old.Micro {
		oldBy[m.Name] = m
	}
	names := make([]string, 0, len(cur.Micro))
	curBy := make(map[string]microResult, len(cur.Micro))
	for _, m := range cur.Micro {
		names = append(names, m.Name)
		curBy[m.Name] = m
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: %s -> %s (tolerance %.0f%%)\n", old.Generated, cur.Generated, tolerance*100)
	fmt.Printf("%-34s %12s %12s %8s %8s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "verdict")
	for _, name := range names {
		now := curBy[name]
		was, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-34s %12s %12.0f %8s %8.0f %8s\n", name, "-", now.NsPerOp, "-", now.AllocsRaw, "new")
			continue
		}
		delta := 0.0
		if was.NsPerOp > 0 {
			delta = (now.NsPerOp - was.NsPerOp) / was.NsPerOp
		}
		verdict := "ok"
		switch {
		case now.AllocsRaw > was.AllocsRaw:
			verdict = "ALLOCS"
			failed = true
		case delta > tolerance && now.NsPerOp-was.NsPerOp > floorNs:
			verdict = "SLOWER"
			failed = true
		}
		fmt.Printf("%-34s %12.0f %12.0f %+7.1f%% %8.0f %8s\n",
			name, was.NsPerOp, now.NsPerOp, delta*100, now.AllocsRaw, verdict)
	}
	for name := range oldBy {
		if _, ok := curBy[name]; !ok {
			fmt.Printf("%-34s dropped from new report\n", name)
		}
	}
	for _, e := range cur.Experiments {
		fmt.Printf("experiment %-24s %8.1f s (informational)\n", e.Name, e.Seconds)
	}
	if failed {
		fmt.Println("benchdiff: FAIL — regression beyond tolerance")
	} else {
		fmt.Println("benchdiff: ok")
	}
	return failed
}
