// Benchdiff is the bench regression gate: it compares the micro-benchmark
// results of two benchtab JSON reports (BENCH_*.json) and fails when any
// benchmark regressed beyond a tolerance — slower by more than the ns/op
// threshold, or allocating more per op at all (allocation counts are
// deterministic, so any increase is a real regression).
//
//	go run ./scripts BENCH_1.json BENCH_2.json
//	go run ./scripts -tolerance 0.15 old.json new.json
//
// Experiment wall times are reported for context but never gate: they are
// too machine-dependent. Benchmarks present in only one report are listed
// but do not fail the gate (the set grows as the repo does).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// microResult mirrors the benchtab report's micro entry.
type microResult struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsRaw float64 `json:"allocs_per_op"`
	BytesRaw  float64 `json:"bytes_per_op"`
}

// report mirrors the slice of the benchtab JSON shape the gate needs.
type report struct {
	Generated   string `json:"generated"`
	Experiments []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	} `json:"experiments"`
	Micro []microResult `json:"micro"`
}

func main() {
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression (0.25 = 25% slower)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.25] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if diff(old, cur, *tolerance) {
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diff prints the comparison and reports whether any benchmark regressed.
func diff(old, cur *report, tolerance float64) (failed bool) {
	oldBy := make(map[string]microResult, len(old.Micro))
	for _, m := range old.Micro {
		oldBy[m.Name] = m
	}
	names := make([]string, 0, len(cur.Micro))
	curBy := make(map[string]microResult, len(cur.Micro))
	for _, m := range cur.Micro {
		names = append(names, m.Name)
		curBy[m.Name] = m
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: %s -> %s (tolerance %.0f%%)\n", old.Generated, cur.Generated, tolerance*100)
	fmt.Printf("%-34s %12s %12s %8s %8s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "verdict")
	for _, name := range names {
		now := curBy[name]
		was, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-34s %12s %12.0f %8s %8.0f %8s\n", name, "-", now.NsPerOp, "-", now.AllocsRaw, "new")
			continue
		}
		delta := 0.0
		if was.NsPerOp > 0 {
			delta = (now.NsPerOp - was.NsPerOp) / was.NsPerOp
		}
		verdict := "ok"
		switch {
		case now.AllocsRaw > was.AllocsRaw:
			verdict = "ALLOCS"
			failed = true
		case delta > tolerance:
			verdict = "SLOWER"
			failed = true
		}
		fmt.Printf("%-34s %12.0f %12.0f %+7.1f%% %8.0f %8s\n",
			name, was.NsPerOp, now.NsPerOp, delta*100, now.AllocsRaw, verdict)
	}
	for name := range oldBy {
		if _, ok := curBy[name]; !ok {
			fmt.Printf("%-34s dropped from new report\n", name)
		}
	}
	for _, e := range cur.Experiments {
		fmt.Printf("experiment %-24s %8.1f s (informational)\n", e.Name, e.Seconds)
	}
	if failed {
		fmt.Println("benchdiff: FAIL — regression beyond tolerance")
	} else {
		fmt.Println("benchdiff: ok")
	}
	return failed
}
