# Developer entry points. `make check` is the pre-commit gate: vet, build,
# and the race-detector suite over the packages that fan work across
# goroutines (eval experiment generators, the pooled SSIM comparer, the
# parallel cutoff preprocessing, and the live runtime stack: wall clock,
# server lifecycle, transport framing, and the sim-vs-live loopback e2e)
# or share atomic state (the obs metrics registry, the cache and
# prefetcher once instrumented into a shared registry).

GO ?= go

.PHONY: check vet build test race bench bench-diff smoke loadtest

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval/... ./internal/ssim/... ./internal/cutoff/... \
		./internal/runtime/... ./internal/server/... ./internal/transport/... \
		./internal/cache/... ./internal/prefetch/... ./internal/obs/... \
		./internal/par/... ./internal/render/... ./internal/loadgen/... \
		./internal/codec/... ./internal/sched/... ./internal/cluster/... \
		./internal/netsim/...

# End-to-end smoke: build both binaries, run a short live session over a
# real socket on localhost, and check the client printed a report.
smoke:
	./scripts/smoke.sh

# Hot-path micro-benchmarks (ssim comparer, render LUT, codec, parallel helper).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/ssim/... ./internal/render/... ./internal/codec/...

# Multi-player load harness against an in-process server: throughput,
# latency percentiles, and the frame-store hit mix at a glance.
loadtest:
	$(GO) run ./cmd/loadgen -game pool -players 16 -duration 5s

# Bench regression gate: compare two benchtab JSON reports' micro results,
# the deadline_ab compliance section, and the udp_vs_tcp datagram-path
# section (zero corrupt frames; push-hit ratio > 0 on the walk load).
# Usage: make bench-diff BENCH_OLD=BENCH_6.json BENCH_NEW=BENCH_7.json
BENCH_OLD ?= BENCH_6.json
BENCH_NEW ?= BENCH_7.json
bench-diff:
	$(GO) run ./scripts $(BENCH_OLD) $(BENCH_NEW)
