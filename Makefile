# Developer entry points. `make check` is the pre-commit gate: vet, build,
# and the race-detector suite over the packages that fan work across
# goroutines (eval experiment generators, the pooled SSIM comparer, the
# parallel cutoff preprocessing).

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval/... ./internal/ssim/... ./internal/cutoff/...

# Hot-path micro-benchmarks (ssim comparer, render LUT, codec, parallel helper).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/ssim/... ./internal/render/... ./internal/codec/...
