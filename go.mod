module coterie

go 1.22
