// Racing reproduces the §4.6 finding on the Racing Mountain circuit: even
// when multiple cars chase each other closely around the same track,
// exploiting *inter-player* frame similarity adds almost nothing on top of
// intra-player similarity, because the cars never drive exactly the same
// line. It replays a 4-car race against the five cache configurations of
// Table 4.
package main

import (
	"fmt"
	"log"

	"coterie/internal/cache"
	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/geom"
	"coterie/internal/trace"
)

func main() {
	spec, err := games.ByName("racing")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preparing %s...\n", spec.FullName)
	env, err := core.PrepareEnv(spec, core.EnvOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const players = 4
	party := trace.GenerateParty(env.Game, players, 90, 11)
	meta := env.MetaFor()
	grid := env.Game.Scene.Grid

	fmt.Printf("\n%d cars, 90 s race; infinite cache, overheard replies cached by all:\n", players)
	fmt.Printf("%-22s %10s\n", "cache configuration", "hit ratio")
	for v := 1; v <= 5; v++ {
		cfg, err := cache.Version(v)
		if err != nil {
			log.Fatal(err)
		}
		caches := make([]*cache.Cache, players)
		for i := range caches {
			caches[i] = cache.New(cfg)
		}
		last := make([]geom.GridPoint, players)
		for i := range last {
			last[i] = geom.GridPoint{I: -1, J: -1}
		}
		for tick := 0; tick < party[0].Len(); tick++ {
			for p := 0; p < players; p++ {
				pt := grid.Snap(party[p].Pos[tick])
				if pt == last[p] {
					continue
				}
				last[p] = pt
				leaf, sig, thresh := meta(pt)
				req := cache.Request{
					Point: pt, Pos: grid.Pos(pt), LeafID: leaf,
					NearSig: sig, DistThresh: thresh, Player: p,
				}
				if _, ok := caches[p].Lookup(req); ok {
					continue
				}
				entry := cache.Entry{Point: pt, Pos: req.Pos, LeafID: leaf, NearSig: sig, Size: 1, Owner: p}
				for _, c := range caches {
					c.Insert(entry) // replies overheard by every car
				}
			}
		}
		var hit float64
		for _, c := range caches {
			hit += c.Stats().HitRatio() / players
		}
		names := []string{
			"V1 intra, exact", "V2 inter, exact", "V3 intra, similar",
			"V4 inter, similar", "V5 both, similar",
		}
		fmt.Printf("%-22s %9.1f%%\n", names[v-1], hit*100)
	}
	fmt.Println("\npaper (§4.6): exact matching gets ~0%; V3 alone reaps most of the benefit;")
	fmt.Println("V5 adds little over V3 — players never follow the exact same path.")

	// And the end-to-end consequence: a full 4-player Coterie race.
	res, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: players,
		Seconds: 45,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-car Coterie session: %.1f FPS, %.1f%% cache hits, %.1f Mbps per car\n",
		res.Mean.FPS, res.Mean.CacheHitRatio*100, res.Mean.BEMbps)
}
