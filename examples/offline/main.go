// Offline walks through the per-app offline preprocessing a developer
// runs to port a game to Coterie (§6): the adaptive cutoff scheme, the
// cache distance thresholds, and a look at how the near/far split behaves
// at a concrete viewpoint.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"coterie/internal/codec"
	"coterie/internal/core"
	"coterie/internal/games"
	"coterie/internal/img"
	"coterie/internal/render"
	"coterie/internal/ssim"
)

func main() {
	spec, err := games.ByName("fps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("porting %s to Coterie...\n\n", spec.FullName)

	// Step 1+2: run the offline preprocessing (cutoff radii, thresholds,
	// frame sizes).
	env, err := core.PrepareEnv(spec, core.EnvOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: adaptive cutoff scheme\n")
	fmt.Printf("  %d leaf regions (quadtree depth %.1f avg / %d max) in %v\n",
		env.Map.Stats.LeafCount, env.Map.Stats.DepthAvg, env.Map.Stats.DepthMax,
		env.Map.Stats.ProcTime.Round(1e6))

	// Step 3: inspect one viewpoint's near/far split.
	pos := env.Game.Spawn
	leaf := env.Map.LeafAt(pos)
	fmt.Printf("\nstep 2: the split at the spawn point (%.0f, %.0f)\n", pos.X, pos.Z)
	fmt.Printf("  leaf region %d: cutoff radius %.1f m, cache distance threshold %.2f m\n",
		leaf.ID, leaf.Radius, leaf.DistThresh)

	r := render.New(env.Game.Scene, render.DefaultConfig())
	eye := env.Game.Scene.EyeAt(pos)
	whole := r.Panorama(eye, 0, math.Inf(1), nil)
	far := r.Panorama(eye, leaf.Radius, math.Inf(1), nil)
	near := r.NearFrame(eye, leaf.Radius, nil)
	merged := render.Merge(near, far)
	if s, err := ssim.Mean(whole, merged); err == nil {
		fmt.Printf("  near+far merge reproduces the direct render: SSIM %.4f\n", s)
	}
	wholeBytes := len(codec.Encode(whole, env.CRF))
	farBytes := len(codec.Encode(far, env.CRF))
	fmt.Printf("  encoded whole BE %d bytes vs far BE %d bytes (%.0f%% smaller)\n",
		wholeBytes, farBytes, 100*(1-float64(farBytes)/float64(wholeBytes)))

	// Step 4: drop the rendered panoramas to disk for inspection,
	// including a colour version of the whole scene.
	if err := writePGM("whole_be.pgm", whole); err != nil {
		log.Fatal(err)
	}
	if err := writePGM("far_be.pgm", far); err != nil {
		log.Fatal(err)
	}
	rgb := r.PanoramaRGB(eye, 0, math.Inf(1), nil)
	f, err := os.Create("whole_be_color.ppm")
	if err != nil {
		log.Fatal(err)
	}
	if err := rgb.WritePPM(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("\nwrote whole_be.pgm, far_be.pgm and whole_be_color.ppm\n")
}

func writePGM(path string, g *img.Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WritePGM(f)
}
