// Multiplayer reproduces the paper's headline scalability result on the
// CTS Procedural World: four players share one 802.11ac medium, and while
// the replicated-Furion architecture collapses under the linear network
// load, Coterie's similarity cache keeps every player at 60 FPS (§7.2,
// Fig 11).
package main

import (
	"fmt"
	"log"

	"coterie/internal/core"
	"coterie/internal/games"
)

func main() {
	spec, err := games.ByName("cts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preparing %s (%.0fx%.0f m, %.0fM grid points)...\n",
		spec.FullName, spec.Width, spec.Depth, spec.Paper.GridPointsM)
	env, err := core.PrepareEnv(spec, core.EnvOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFPS as the party grows (45 s sessions):")
	fmt.Printf("%-22s %6s %6s %6s %6s\n", "system", "1P", "2P", "3P", "4P")
	for _, sys := range []core.SystemKind{core.MultiFurion, core.CoterieNoCache, core.Coterie} {
		fmt.Printf("%-22s", sys)
		for players := 1; players <= 4; players++ {
			res, err := core.RunSession(env, core.SessionConfig{
				System:  sys,
				Players: players,
				Seconds: 45,
				Seed:    7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6.1f", res.Mean.FPS)
		}
		fmt.Println()
	}
	fmt.Println("\npaper (Fig 11): Multi-Furion decays toward ~24 FPS; Coterie holds 60 FPS")

	res, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: 4,
		Seconds: 45,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-player Coterie: %.1f%% cache hits, %.1f Mbps per player (BE), %.0f Kbps FI sync\n",
		res.Mean.CacheHitRatio*100, res.Mean.BEMbps, res.FIKbps)
}
