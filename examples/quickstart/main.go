// Quickstart runs a single-player Coterie session on Viking Village end to
// end: build the world, run the offline preprocessing, simulate a minute
// of play on the testbed, and print the headline quality-of-experience
// numbers next to the paper's.
package main

import (
	"fmt"
	"log"

	"coterie/internal/core"
	"coterie/internal/games"
)

func main() {
	// 1. Pick a game from the paper's catalog.
	spec, err := games.ByName("viking")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline preprocessing (§4.3, §6): build the world, partition it
	// with the adaptive cutoff scheme, derive cache distance thresholds,
	// and sample frame sizes. This is the per-app installation step.
	fmt.Printf("preparing %s...\n", spec.FullName)
	env, err := core.PrepareEnv(spec, core.EnvOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %.0fx%.0f m, %d objects, %d leaf regions\n",
		spec.Width, spec.Depth, len(env.Game.Scene.Objects), env.Map.Stats.LeafCount)
	fmt.Printf("frames at 4K: whole BE ~%d KB, far BE ~%d KB\n\n",
		env.Sizer.WholeBE/1024, env.Sizer.FarBE/1024)

	// 3. Run a Coterie session on the simulated Pixel 2 + 802.11ac
	// testbed.
	res, err := core.RunSession(env, core.SessionConfig{
		System:  core.Coterie,
		Players: 1,
		Seconds: 60,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Mean
	fmt.Println("Coterie, 1 player, 60 s:          measured   paper (Table 8)")
	fmt.Printf("  frame rate                        %5.1f fps   60 fps\n", m.FPS)
	fmt.Printf("  inter-frame latency               %5.1f ms    16.0 ms\n", m.InterFrameMs)
	fmt.Printf("  responsiveness (motion-to-photon) %5.1f ms    15.8 ms\n", m.ResponsivenessMs)
	fmt.Printf("  cache hit ratio                   %5.1f %%     80.8 %%\n", m.CacheHitRatio*100)
	fmt.Printf("  per-player BE bandwidth           %5.1f Mbps  26 Mbps\n", m.BEMbps)
	fmt.Printf("  CPU / GPU load                    %4.0f/%-4.0f %%  32/56 %%\n", m.CPUPct, m.GPUPct)
}
